//! Blocks and the block chain structure (paper Fig. 2).
//!
//! A block carries the usual linkage fields (index, previous hash,
//! timestamp, own hash) plus the edge-specific ones: the metadata items it
//! packs (committed via a Merkle root), **where this block is stored**,
//! **where the previous block is stored** (so a bootstrapping node can walk
//! the chain backwards, §IV-D), the nodes told to cache one more recent
//! block (§IV-C), and the PoS credentials — `POSHash`, the miner, its
//! claimed delay `t`, and the amendment `B` ("Get B from current block",
//! §V-C).

use crate::account::AccountId;
use crate::metadata::MetadataItem;
use crate::pos::Amendment;
use edgechain_crypto::{Digest, MerkleTree, Sha256};
use edgechain_sim::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A block in the edge blockchain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Height of the block (genesis = 0).
    pub index: u64,
    /// Hash of the previous block ([`Digest::ZERO`] for genesis).
    pub prev_hash: Digest,
    /// Seconds since simulation start at which the block was mined.
    pub timestamp_secs: u64,
    /// The chained PoS hash for this round (Eq. 7).
    pub pos_hash: Digest,
    /// Account of the miner.
    pub miner: AccountId,
    /// The miner's claimed delay `t` since the previous block (seconds).
    pub delay_secs: u64,
    /// The amendment `B` in force for this round.
    pub amendment: Amendment,
    /// Metadata items packed into this block.
    pub metadata: Vec<MetadataItem>,
    /// Merkle root over the metadata items.
    pub merkle_root: Digest,
    /// Nodes assigned to store **this** block.
    pub storing_nodes: Vec<NodeId>,
    /// Nodes storing the **previous** block (backward pointer for chain
    /// bootstrap).
    pub prev_storing_nodes: Vec<NodeId>,
    /// Nodes instructed to grow their recent-block cache by one.
    pub recent_cache_nodes: Vec<NodeId>,
    /// Hash of this block (over every field above).
    pub hash: Digest,
}

impl Block {
    /// The deterministic genesis block: stored by everyone, mined by nobody.
    pub fn genesis() -> Self {
        let mut b = Block {
            index: 0,
            prev_hash: Digest::ZERO,
            timestamp_secs: 0,
            pos_hash: edgechain_crypto::sha256(b"edgechain-genesis-pos"),
            miner: AccountId(Digest::ZERO),
            delay_secs: 0,
            amendment: Amendment::from_fraction(1, 1),
            metadata: Vec::new(),
            merkle_root: MerkleTree::from_leaves(Vec::<&[u8]>::new()).root(),
            storing_nodes: Vec::new(),
            prev_storing_nodes: Vec::new(),
            recent_cache_nodes: Vec::new(),
            hash: Digest::ZERO,
        };
        b.hash = b.compute_hash();
        b
    }

    /// Assembles and seals a block: fills in the Merkle root and hash.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        index: u64,
        prev_hash: Digest,
        timestamp_secs: u64,
        pos_hash: Digest,
        miner: AccountId,
        delay_secs: u64,
        amendment: Amendment,
        metadata: Vec<MetadataItem>,
        storing_nodes: Vec<NodeId>,
        prev_storing_nodes: Vec<NodeId>,
        recent_cache_nodes: Vec<NodeId>,
    ) -> Self {
        let merkle_root =
            MerkleTree::from_leaves(metadata.iter().map(|m| m.canonical_bytes())).root();
        let mut block = Block {
            index,
            prev_hash,
            timestamp_secs,
            pos_hash,
            miner,
            delay_secs,
            amendment,
            metadata,
            merkle_root,
            storing_nodes,
            prev_storing_nodes,
            recent_cache_nodes,
            hash: Digest::ZERO,
        };
        block.hash = block.compute_hash();
        block
    }

    /// Hash of all fields except `hash` itself.
    pub fn compute_hash(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(b"edgechain-block-v1");
        h.update(self.index.to_be_bytes());
        h.update(self.prev_hash.as_bytes());
        h.update(self.timestamp_secs.to_be_bytes());
        h.update(self.pos_hash.as_bytes());
        h.update(self.miner.as_bytes());
        h.update(self.delay_secs.to_be_bytes());
        h.update(self.amendment.numerator().to_be_bytes());
        h.update(self.amendment.denominator().to_be_bytes());
        h.update(self.merkle_root.as_bytes());
        for set in [
            &self.storing_nodes,
            &self.prev_storing_nodes,
            &self.recent_cache_nodes,
        ] {
            h.update((set.len() as u64).to_be_bytes());
            for n in set.iter() {
                h.update((n.0 as u64).to_be_bytes());
            }
        }
        h.finalize()
    }

    /// Recomputes the Merkle root over the metadata items.
    pub fn compute_merkle_root(&self) -> Digest {
        MerkleTree::from_leaves(self.metadata.iter().map(|m| m.canonical_bytes())).root()
    }

    /// Structural self-check: hash and Merkle root match the contents.
    pub fn is_well_formed(&self) -> bool {
        self.hash == self.compute_hash() && self.merkle_root == self.compute_merkle_root()
    }

    /// Validates the linkage to the previous block.
    ///
    /// # Errors
    ///
    /// Returns the specific [`BlockError`] for a broken index, hash link,
    /// timestamp regression, or malformed contents.
    pub fn validate_against(&self, prev: &Block) -> Result<(), BlockError> {
        if self.index != prev.index + 1 {
            return Err(BlockError::BadIndex {
                expected: prev.index + 1,
                got: self.index,
            });
        }
        if self.prev_hash != prev.hash {
            return Err(BlockError::BrokenHashLink { index: self.index });
        }
        if self.timestamp_secs < prev.timestamp_secs {
            return Err(BlockError::TimestampRegression { index: self.index });
        }
        if !self.is_well_formed() {
            return Err(BlockError::Malformed { index: self.index });
        }
        Ok(())
    }

    /// Exact wire size in bytes (the length of
    /// [`crate::codec::encode_block`]'s output). Blocks stay well under
    /// the paper's "average block size is less than 10 KB".
    pub fn wire_size(&self) -> u64 {
        crate::codec::encode_block(self).len() as u64
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "block #{} [{} items, miner {}, t={}s]",
            self.index,
            self.metadata.len(),
            self.miner,
            self.delay_secs
        )
    }
}

/// Block validation failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockError {
    /// Index is not `prev.index + 1`.
    BadIndex {
        /// Expected index.
        expected: u64,
        /// Index found in the block.
        got: u64,
    },
    /// `prev_hash` does not match the previous block's hash.
    BrokenHashLink {
        /// Index of the offending block.
        index: u64,
    },
    /// Timestamp is earlier than the previous block's.
    TimestampRegression {
        /// Index of the offending block.
        index: u64,
    },
    /// Hash or Merkle root does not match the contents.
    Malformed {
        /// Index of the offending block.
        index: u64,
    },
    /// A metadata item carries an invalid producer signature.
    BadMetadataSignature {
        /// Index of the offending block.
        index: u64,
        /// Position of the bad item within the block.
        item: usize,
    },
    /// The PoS mining claim does not verify.
    BadPosClaim {
        /// Index of the offending block.
        index: u64,
    },
}

impl fmt::Display for BlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockError::BadIndex { expected, got } => {
                write!(f, "bad block index: expected {expected}, got {got}")
            }
            BlockError::BrokenHashLink { index } => {
                write!(f, "block {index} does not link to its predecessor")
            }
            BlockError::TimestampRegression { index } => {
                write!(f, "block {index} timestamp precedes its predecessor")
            }
            BlockError::Malformed { index } => {
                write!(f, "block {index} hash or merkle root mismatch")
            }
            BlockError::BadMetadataSignature { index, item } => {
                write!(f, "block {index} metadata item {item} signature invalid")
            }
            BlockError::BadPosClaim { index } => {
                write!(f, "block {index} proof-of-stake claim invalid")
            }
        }
    }
}

impl std::error::Error for BlockError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::Identity;
    use crate::metadata::{DataId, DataType, Location};

    fn meta(seed: u64, id: u64) -> MetadataItem {
        MetadataItem::new_signed(
            Identity::from_seed(seed).keys(),
            DataId(id),
            DataType::Sensing("PM2.5".into()),
            60,
            Location::default(),
            1440,
            None,
            1_000_000,
        )
    }

    fn child_of(prev: &Block, ts: u64) -> Block {
        Block::new(
            prev.index + 1,
            prev.hash,
            ts,
            edgechain_crypto::sha256(b"pos"),
            Identity::from_seed(1).account(),
            30,
            Amendment::from_fraction(1, 100),
            vec![meta(2, 7)],
            vec![NodeId(0), NodeId(3)],
            prev.storing_nodes.clone(),
            vec![NodeId(5)],
        )
    }

    #[test]
    fn genesis_is_well_formed() {
        let g = Block::genesis();
        assert!(g.is_well_formed());
        assert_eq!(g.index, 0);
        assert_eq!(g.prev_hash, Digest::ZERO);
    }

    #[test]
    fn genesis_is_deterministic() {
        assert_eq!(Block::genesis(), Block::genesis());
    }

    #[test]
    fn valid_child_links() {
        let g = Block::genesis();
        let b = child_of(&g, 60);
        assert!(b.is_well_formed());
        assert_eq!(b.validate_against(&g), Ok(()));
    }

    #[test]
    fn bad_index_detected() {
        let g = Block::genesis();
        let mut b = child_of(&g, 60);
        b.index = 5;
        b.hash = b.compute_hash();
        assert_eq!(
            b.validate_against(&g),
            Err(BlockError::BadIndex {
                expected: 1,
                got: 5
            })
        );
    }

    #[test]
    fn broken_hash_link_detected() {
        let g = Block::genesis();
        let mut b = child_of(&g, 60);
        b.prev_hash = edgechain_crypto::sha256(b"not the genesis");
        b.hash = b.compute_hash();
        assert_eq!(
            b.validate_against(&g),
            Err(BlockError::BrokenHashLink { index: 1 })
        );
    }

    #[test]
    fn timestamp_regression_detected() {
        let g = Block::genesis();
        let b1 = child_of(&g, 120);
        let mut b2 = child_of(&b1, 60);
        b2.prev_hash = b1.hash;
        b2.index = 2;
        b2.hash = b2.compute_hash();
        assert_eq!(
            b2.validate_against(&b1),
            Err(BlockError::TimestampRegression { index: 2 })
        );
    }

    #[test]
    fn tampered_metadata_detected() {
        let g = Block::genesis();
        let mut b = child_of(&g, 60);
        // Change a metadata item without re-sealing: merkle root mismatch.
        b.metadata[0].data_size = 5;
        assert!(!b.is_well_formed());
        assert_eq!(
            b.validate_against(&g),
            Err(BlockError::Malformed { index: 1 })
        );
    }

    #[test]
    fn tampered_storing_nodes_detected() {
        let g = Block::genesis();
        let mut b = child_of(&g, 60);
        b.storing_nodes.push(NodeId(9));
        assert!(!b.is_well_formed());
    }

    #[test]
    fn wire_size_below_10kb_for_typical_blocks() {
        let g = Block::genesis();
        let mut items = Vec::new();
        for i in 0..3 {
            items.push(meta(10 + i, i));
        }
        let b = Block::new(
            1,
            g.hash,
            60,
            edgechain_crypto::sha256(b"pos"),
            Identity::from_seed(1).account(),
            60,
            Amendment::from_fraction(1, 100),
            items,
            vec![NodeId(0)],
            vec![],
            vec![],
        );
        assert!(b.wire_size() < 10_000, "block size {}", b.wire_size());
        assert!(b.wire_size() > 200);
    }

    #[test]
    fn display_mentions_index() {
        let g = Block::genesis();
        assert!(format!("{g}").contains("block #0"));
    }
}
