//! Blocks and the block chain structure (paper Fig. 2).
//!
//! A block carries the usual linkage fields (index, previous hash,
//! timestamp, own hash) plus the edge-specific ones: the metadata items it
//! packs (committed via a Merkle root), **where this block is stored**,
//! **where the previous block is stored** (so a bootstrapping node can walk
//! the chain backwards, §IV-D), the nodes told to cache one more recent
//! block (§IV-C), and the PoS credentials — `POSHash`, the miner, its
//! claimed delay `t`, and the amendment `B` ("Get B from current block",
//! §V-C).

use crate::account::AccountId;
use crate::metadata::MetadataItem;
use crate::pos::Amendment;
use edgechain_crypto::{leaf_hash, Digest, MerkleTree, Sha256};
use edgechain_sim::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// A block in the edge blockchain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Height of the block (genesis = 0).
    pub index: u64,
    /// Hash of the previous block ([`Digest::ZERO`] for genesis).
    pub prev_hash: Digest,
    /// Seconds since simulation start at which the block was mined.
    pub timestamp_secs: u64,
    /// The chained PoS hash for this round (Eq. 7).
    pub pos_hash: Digest,
    /// Account of the miner.
    pub miner: AccountId,
    /// The miner's claimed delay `t` since the previous block (seconds).
    pub delay_secs: u64,
    /// The amendment `B` in force for this round.
    pub amendment: Amendment,
    /// Metadata items packed into this block.
    pub metadata: Vec<MetadataItem>,
    /// Merkle root over the metadata items.
    pub merkle_root: Digest,
    /// Nodes assigned to store **this** block.
    pub storing_nodes: Vec<NodeId>,
    /// Nodes storing the **previous** block (backward pointer for chain
    /// bootstrap).
    pub prev_storing_nodes: Vec<NodeId>,
    /// Nodes instructed to grow their recent-block cache by one.
    pub recent_cache_nodes: Vec<NodeId>,
    /// Hash of this block (over every field above).
    pub hash: Digest,
    /// Lazily-filled derived data (wire encoding, Merkle leaf digests);
    /// invisible to equality and the codec.
    pub(crate) cache: SealCache,
}

/// Per-block caches of derived data: the wire encoding (shared as one
/// `Arc<[u8]>` by every consumer) and the Merkle leaf digests over the
/// metadata items.
///
/// Both caches are filled lazily on first use and assume the usual
/// blockchain invariant that a **sealed block is immutable**. The honest
/// recomputation paths ([`Block::compute_hash`],
/// [`Block::compute_merkle_root`], [`Block::is_well_formed`]) never read
/// them, so tamper detection on a mutated block is unaffected; only the
/// explicitly-named `*_sealed` fast paths and [`Block::wire_size`] /
/// [`Block::encoded`] trust them. Equality ignores the cache (a decoded
/// block equals the sealed original), as does the codec.
#[derive(Default)]
pub(crate) struct SealCache {
    encoded: OnceLock<Arc<[u8]>>,
    leaves: OnceLock<Arc<[Digest]>>,
}

impl Clone for SealCache {
    fn clone(&self) -> Self {
        SealCache {
            encoded: self.encoded.clone(),
            leaves: self.leaves.clone(),
        }
    }
}

impl PartialEq for SealCache {
    /// Caches are derived data: two blocks are equal iff their fields are,
    /// regardless of which caches happen to be filled.
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl fmt::Debug for SealCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SealCache")
            .field("encoded", &self.encoded.get().map(|e| e.len()))
            .field("leaves", &self.leaves.get().map(|l| l.len()))
            .finish()
    }
}

impl Block {
    /// The deterministic genesis block: stored by everyone, mined by nobody.
    pub fn genesis() -> Self {
        let mut b = Block {
            index: 0,
            prev_hash: Digest::ZERO,
            timestamp_secs: 0,
            pos_hash: edgechain_crypto::sha256(b"edgechain-genesis-pos"),
            miner: AccountId(Digest::ZERO),
            delay_secs: 0,
            amendment: Amendment::from_fraction(1, 1),
            metadata: Vec::new(),
            merkle_root: MerkleTree::from_leaves(Vec::<&[u8]>::new()).root(),
            storing_nodes: Vec::new(),
            prev_storing_nodes: Vec::new(),
            recent_cache_nodes: Vec::new(),
            hash: Digest::ZERO,
            cache: SealCache::default(),
        };
        b.hash = b.compute_hash();
        b
    }

    /// Assembles and seals a block: fills in the Merkle root and hash.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        index: u64,
        prev_hash: Digest,
        timestamp_secs: u64,
        pos_hash: Digest,
        miner: AccountId,
        delay_secs: u64,
        amendment: Amendment,
        metadata: Vec<MetadataItem>,
        storing_nodes: Vec<NodeId>,
        prev_storing_nodes: Vec<NodeId>,
        recent_cache_nodes: Vec<NodeId>,
    ) -> Self {
        // Hash each item once, keep the leaf digests: the root is built
        // from them here and the sealed-path verification reuses them.
        let leaves: Arc<[Digest]> = metadata
            .iter()
            .map(|m| leaf_hash(&m.canonical_bytes()))
            .collect();
        let merkle_root = MerkleTree::from_leaf_hashes(leaves.to_vec()).root();
        let mut block = Block {
            index,
            prev_hash,
            timestamp_secs,
            pos_hash,
            miner,
            delay_secs,
            amendment,
            metadata,
            merkle_root,
            storing_nodes,
            prev_storing_nodes,
            recent_cache_nodes,
            hash: Digest::ZERO,
            cache: SealCache::default(),
        };
        let _ = block.cache.leaves.set(leaves);
        block.hash = block.compute_hash();
        block
    }

    /// Hash of all fields except `hash` itself.
    pub fn compute_hash(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(b"edgechain-block-v1");
        h.update(self.index.to_be_bytes());
        h.update(self.prev_hash.as_bytes());
        h.update(self.timestamp_secs.to_be_bytes());
        h.update(self.pos_hash.as_bytes());
        h.update(self.miner.as_bytes());
        h.update(self.delay_secs.to_be_bytes());
        h.update(self.amendment.numerator().to_be_bytes());
        h.update(self.amendment.denominator().to_be_bytes());
        h.update(self.merkle_root.as_bytes());
        for set in [
            &self.storing_nodes,
            &self.prev_storing_nodes,
            &self.recent_cache_nodes,
        ] {
            h.update((set.len() as u64).to_be_bytes());
            for n in set.iter() {
                h.update((n.0 as u64).to_be_bytes());
            }
        }
        h.finalize()
    }

    /// Recomputes the Merkle root over the metadata items, rehashing every
    /// item from its canonical bytes. This is the honest reference path:
    /// it never consults the leaf cache, so it detects any post-seal
    /// mutation.
    pub fn compute_merkle_root(&self) -> Digest {
        MerkleTree::from_leaves(self.metadata.iter().map(|m| m.canonical_bytes())).root()
    }

    /// Structural self-check: hash and Merkle root match the contents.
    pub fn is_well_formed(&self) -> bool {
        self.hash == self.compute_hash() && self.merkle_root == self.compute_merkle_root()
    }

    /// The Merkle leaf digests over the metadata items, hashed at seal
    /// time by [`Block::new`] (or on first use for decoded blocks) and
    /// cached. Index `i` commits to `metadata[i].canonical_bytes()`.
    pub fn leaf_digests(&self) -> &[Digest] {
        self.cache.leaves.get_or_init(|| {
            self.metadata
                .iter()
                .map(|m| leaf_hash(&m.canonical_bytes()))
                .collect()
        })
    }

    /// Structural self-check for a block this process sealed: recomputes
    /// the block hash and rebuilds the Merkle root from the **cached leaf
    /// digests** ([`Block::leaf_digests`]), skipping the per-item
    /// rehashing of [`Block::is_well_formed`]. Sound only under the
    /// sealed-block immutability invariant the cache documents; code
    /// validating blocks of unknown provenance (decode paths, fork
    /// adoption) must keep using [`Block::is_well_formed`].
    pub fn is_well_formed_sealed(&self) -> bool {
        self.hash == self.compute_hash()
            && self.merkle_root == MerkleTree::from_leaf_hashes(self.leaf_digests().to_vec()).root()
    }

    /// [`Block::validate_against`] with the sealed-path structural check
    /// ([`Block::is_well_formed_sealed`]) — same linkage errors, leaf
    /// hashing skipped.
    ///
    /// # Errors
    ///
    /// Returns the specific [`BlockError`] exactly as
    /// [`Block::validate_against`] does.
    pub fn validate_sealed_against(&self, prev: &Block) -> Result<(), BlockError> {
        if self.index != prev.index + 1 {
            return Err(BlockError::BadIndex {
                expected: prev.index + 1,
                got: self.index,
            });
        }
        if self.prev_hash != prev.hash {
            return Err(BlockError::BrokenHashLink { index: self.index });
        }
        if self.timestamp_secs < prev.timestamp_secs {
            return Err(BlockError::TimestampRegression { index: self.index });
        }
        if !self.is_well_formed_sealed() {
            return Err(BlockError::Malformed { index: self.index });
        }
        Ok(())
    }

    /// Validates the linkage to the previous block.
    ///
    /// # Errors
    ///
    /// Returns the specific [`BlockError`] for a broken index, hash link,
    /// timestamp regression, or malformed contents.
    pub fn validate_against(&self, prev: &Block) -> Result<(), BlockError> {
        if self.index != prev.index + 1 {
            return Err(BlockError::BadIndex {
                expected: prev.index + 1,
                got: self.index,
            });
        }
        if self.prev_hash != prev.hash {
            return Err(BlockError::BrokenHashLink { index: self.index });
        }
        if self.timestamp_secs < prev.timestamp_secs {
            return Err(BlockError::TimestampRegression { index: self.index });
        }
        if !self.is_well_formed() {
            return Err(BlockError::Malformed { index: self.index });
        }
        Ok(())
    }

    /// Checks this block's PoS-hash linkage against its predecessor
    /// (Eq. 7 chaining: `pos_hash = Hash(prev.pos_hash ‖ miner)`).
    ///
    /// This is deliberately *not* part of [`Block::validate_against`]: unit
    /// fixtures seal blocks with arbitrary pos hashes, and only live wire
    /// reception — where the sender may be Byzantine — needs the check.
    ///
    /// # Errors
    ///
    /// Returns [`BlockError::BadPosClaim`] when the chained hash does not
    /// match, i.e. the miner forged a hit it never earned.
    pub fn check_pos_link(&self, prev: &Block) -> Result<(), BlockError> {
        if crate::pos::verify_pos_linkage(&prev.pos_hash, &self.miner, &self.pos_hash) {
            Ok(())
        } else {
            Err(BlockError::BadPosClaim { index: self.index })
        }
    }

    /// The block's wire encoding, computed once and shared as an
    /// `Arc<[u8]>`: broadcast, `fetch_data` replies, and replica repair
    /// all hand out clones of the same allocation instead of re-running
    /// [`crate::codec::encode_block`] per consumer.
    pub fn encoded(&self) -> Arc<[u8]> {
        self.cache
            .encoded
            .get_or_init(|| crate::codec::encode_block(self).into())
            .clone()
    }

    /// Exact wire size in bytes (the length of
    /// [`crate::codec::encode_block`]'s output), read from the cached
    /// encoding — repeated calls cost one encode total, not one each.
    /// Blocks stay well under the paper's "average block size is less
    /// than 10 KB".
    pub fn wire_size(&self) -> u64 {
        self.encoded().len() as u64
    }
}

impl fmt::Display for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "block #{} [{} items, miner {}, t={}s]",
            self.index,
            self.metadata.len(),
            self.miner,
            self.delay_secs
        )
    }
}

/// Block validation failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockError {
    /// Index is not `prev.index + 1`.
    BadIndex {
        /// Expected index.
        expected: u64,
        /// Index found in the block.
        got: u64,
    },
    /// `prev_hash` does not match the previous block's hash.
    BrokenHashLink {
        /// Index of the offending block.
        index: u64,
    },
    /// Timestamp is earlier than the previous block's.
    TimestampRegression {
        /// Index of the offending block.
        index: u64,
    },
    /// Hash or Merkle root does not match the contents.
    Malformed {
        /// Index of the offending block.
        index: u64,
    },
    /// A metadata item carries an invalid producer signature.
    BadMetadataSignature {
        /// Index of the offending block.
        index: u64,
        /// Position of the bad item within the block.
        item: usize,
    },
    /// The PoS mining claim does not verify.
    BadPosClaim {
        /// Index of the offending block.
        index: u64,
    },
}

impl fmt::Display for BlockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockError::BadIndex { expected, got } => {
                write!(f, "bad block index: expected {expected}, got {got}")
            }
            BlockError::BrokenHashLink { index } => {
                write!(f, "block {index} does not link to its predecessor")
            }
            BlockError::TimestampRegression { index } => {
                write!(f, "block {index} timestamp precedes its predecessor")
            }
            BlockError::Malformed { index } => {
                write!(f, "block {index} hash or merkle root mismatch")
            }
            BlockError::BadMetadataSignature { index, item } => {
                write!(f, "block {index} metadata item {item} signature invalid")
            }
            BlockError::BadPosClaim { index } => {
                write!(f, "block {index} proof-of-stake claim invalid")
            }
        }
    }
}

impl std::error::Error for BlockError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::Identity;
    use crate::metadata::{DataId, DataType, Location};

    fn meta(seed: u64, id: u64) -> MetadataItem {
        MetadataItem::new_signed(
            Identity::from_seed(seed).keys(),
            DataId(id),
            DataType::Sensing("PM2.5".into()),
            60,
            Location::default(),
            1440,
            None,
            1_000_000,
        )
    }

    fn child_of(prev: &Block, ts: u64) -> Block {
        Block::new(
            prev.index + 1,
            prev.hash,
            ts,
            edgechain_crypto::sha256(b"pos"),
            Identity::from_seed(1).account(),
            30,
            Amendment::from_fraction(1, 100),
            vec![meta(2, 7)],
            vec![NodeId(0), NodeId(3)],
            prev.storing_nodes.clone(),
            vec![NodeId(5)],
        )
    }

    #[test]
    fn genesis_is_well_formed() {
        let g = Block::genesis();
        assert!(g.is_well_formed());
        assert_eq!(g.index, 0);
        assert_eq!(g.prev_hash, Digest::ZERO);
    }

    #[test]
    fn genesis_is_deterministic() {
        assert_eq!(Block::genesis(), Block::genesis());
    }

    #[test]
    fn valid_child_links() {
        let g = Block::genesis();
        let b = child_of(&g, 60);
        assert!(b.is_well_formed());
        assert_eq!(b.validate_against(&g), Ok(()));
    }

    #[test]
    fn pos_linkage_check_accepts_earned_and_rejects_forged() {
        let g = Block::genesis();
        let miner = Identity::from_seed(1).account();
        let mut b = child_of(&g, 60);
        b.pos_hash = crate::pos::next_pos_hash(&g.pos_hash, &miner);
        let b = Block::new(
            b.index,
            b.prev_hash,
            b.timestamp_secs,
            b.pos_hash,
            miner,
            b.delay_secs,
            b.amendment,
            b.metadata.clone(),
            b.storing_nodes.clone(),
            b.prev_storing_nodes.clone(),
            b.recent_cache_nodes.clone(),
        );
        assert_eq!(b.check_pos_link(&g), Ok(()));
        // The fixture child uses an arbitrary pos hash — a forged claim.
        let forged = child_of(&g, 60);
        assert_eq!(
            forged.check_pos_link(&g),
            Err(BlockError::BadPosClaim { index: 1 })
        );
    }

    #[test]
    fn bad_index_detected() {
        let g = Block::genesis();
        let mut b = child_of(&g, 60);
        b.index = 5;
        b.hash = b.compute_hash();
        assert_eq!(
            b.validate_against(&g),
            Err(BlockError::BadIndex {
                expected: 1,
                got: 5
            })
        );
    }

    #[test]
    fn broken_hash_link_detected() {
        let g = Block::genesis();
        let mut b = child_of(&g, 60);
        b.prev_hash = edgechain_crypto::sha256(b"not the genesis");
        b.hash = b.compute_hash();
        assert_eq!(
            b.validate_against(&g),
            Err(BlockError::BrokenHashLink { index: 1 })
        );
    }

    #[test]
    fn timestamp_regression_detected() {
        let g = Block::genesis();
        let b1 = child_of(&g, 120);
        let mut b2 = child_of(&b1, 60);
        b2.prev_hash = b1.hash;
        b2.index = 2;
        b2.hash = b2.compute_hash();
        assert_eq!(
            b2.validate_against(&b1),
            Err(BlockError::TimestampRegression { index: 2 })
        );
    }

    #[test]
    fn tampered_metadata_detected() {
        let g = Block::genesis();
        let mut b = child_of(&g, 60);
        // Change a metadata item without re-sealing: merkle root mismatch.
        b.metadata[0].data_size = 5;
        assert!(!b.is_well_formed());
        assert_eq!(
            b.validate_against(&g),
            Err(BlockError::Malformed { index: 1 })
        );
    }

    #[test]
    fn tampered_storing_nodes_detected() {
        let g = Block::genesis();
        let mut b = child_of(&g, 60);
        b.storing_nodes.push(NodeId(9));
        assert!(!b.is_well_formed());
    }

    #[test]
    fn wire_size_below_10kb_for_typical_blocks() {
        let g = Block::genesis();
        let mut items = Vec::new();
        for i in 0..3 {
            items.push(meta(10 + i, i));
        }
        let b = Block::new(
            1,
            g.hash,
            60,
            edgechain_crypto::sha256(b"pos"),
            Identity::from_seed(1).account(),
            60,
            Amendment::from_fraction(1, 100),
            items,
            vec![NodeId(0)],
            vec![],
            vec![],
        );
        assert!(b.wire_size() < 10_000, "block size {}", b.wire_size());
        assert!(b.wire_size() > 200);
    }

    #[test]
    fn display_mentions_index() {
        let g = Block::genesis();
        assert!(format!("{g}").contains("block #0"));
    }

    #[test]
    fn wire_size_encodes_exactly_once() {
        use edgechain_telemetry as telemetry;
        let g = Block::genesis();
        let b = child_of(&g, 60);
        let expected = crate::codec::encode_block(&b).len() as u64;
        // Fresh clone so the reference encode above hasn't warmed the cache.
        let b = child_of(&g, 60);
        telemetry::enable();
        let first = b.wire_size();
        let again = b.wire_size();
        let enc = b.encoded();
        let mut session = telemetry::finish().expect("enabled");
        let snap = session.registry.snapshot();
        assert_eq!(first, expected);
        assert_eq!(again, expected);
        assert_eq!(enc.len() as u64, expected);
        assert_eq!(
            snap.counter("codec.block_encodes"),
            Some(1),
            "repeated wire_size/encoded calls must reuse one encode"
        );
    }

    #[test]
    fn encoded_shares_one_allocation() {
        let b = child_of(&Block::genesis(), 60);
        let a1 = b.encoded();
        let a2 = b.encoded();
        assert!(Arc::ptr_eq(&a1, &a2));
        assert_eq!(a1.as_ref(), crate::codec::encode_block(&b).as_slice());
    }

    #[test]
    fn sealed_checks_match_honest_paths() {
        let g = Block::genesis();
        let b = child_of(&g, 60);
        assert!(b.is_well_formed_sealed());
        assert_eq!(b.validate_sealed_against(&g), b.validate_against(&g));

        // Decoded blocks start with an empty cache and must still agree.
        let decoded = crate::codec::decode_block(&crate::codec::encode_block(&b)).unwrap();
        assert!(decoded.is_well_formed_sealed());
        assert_eq!(decoded.leaf_digests(), b.leaf_digests());

        // Linkage errors come out identically on both paths.
        let mut bad = child_of(&g, 60);
        bad.index = 5;
        bad.hash = bad.compute_hash();
        assert_eq!(bad.validate_sealed_against(&g), bad.validate_against(&g));
    }

    #[test]
    fn leaf_digests_commit_to_canonical_bytes() {
        let b = child_of(&Block::genesis(), 60);
        let expect: Vec<Digest> = b
            .metadata
            .iter()
            .map(|m| leaf_hash(&m.canonical_bytes()))
            .collect();
        assert_eq!(b.leaf_digests(), expect.as_slice());
        assert_eq!(
            MerkleTree::from_leaf_hashes(expect).root(),
            b.compute_merkle_root()
        );
    }
}
