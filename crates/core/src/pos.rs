//! The contribution-weighted Proof-of-Stake mechanism (paper §V).
//!
//! Per block, every node `i` derives a **hit**
//! `h_i = Hash(POSHash_prev ‖ Account_i) mod M` — a per-node uniform random
//! value that everyone can recompute and verify — and a **target**
//! `R_i(t) = S_i · Q_i · t · B` that grows each second. The node whose
//! target first reaches its hit mines the block. Nodes with more tokens
//! (`S_i`) and more stored items (`Q_i`) therefore mine sooner on average.
//!
//! The **amendment** `B` keeps the expected inter-block time at `t0`:
//! `B = M / ((n+1) · t0 · Ū)` with `Ū` the mean of `U_i = S_i·Q_i`
//! (Eq. 14). With homogeneous `U_i`, the winning delay is
//! `min_i h_i · (n+1) · t0 / M`, and since the minimum of `n` uniforms on
//! `(0, M)` has mean `M/(n+1)`, the expected block interval is exactly
//! `t0`. (The paper's intermediate Eq. 13 states `E(Z) = M/(n(n+1))`; the
//! correct value is `M/(n+1)`, and it is the latter that makes the paper's
//! own final formula Eq. 14 come out right — we verify this statistically
//! in the tests.)
//!
//! All arithmetic is exact: `B` is a reduced `u128` rational, `M = 2^64`,
//! and hits are the top 64 bits of a SHA-256, so the mining inequality
//! `h ≤ U·t·B` never suffers floating-point drift and every node verifies
//! the same winner.

use crate::account::AccountId;
use edgechain_crypto::{sha256_many_pair64, sha256_pair64, Digest};
use edgechain_telemetry as telemetry;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// The hit modulus `M = 2^64`: hits are uniform on `[0, 2^64)`.
pub const HIT_MODULUS: u128 = 1 << 64;

/// Maximum mining delay we will report, a guard against absurd parameters
/// (one simulated week).
pub const MAX_DELAY_SECS: u64 = 7 * 24 * 3600;

/// Chains the PoS hash: `POSHash(t+1, i) = Hash(POSHash(t) ‖ Account_i)`
/// (paper Eq. 7). Two 32-byte inputs make exactly one 64-byte message, so
/// this takes the fixed-shape SHA-256 fast path (padding schedule
/// precomputed at compile time); the streaming reference below pins
/// bit-identity.
pub fn next_pos_hash(prev: &Digest, account: &AccountId) -> Digest {
    sha256_pair64(prev.as_bytes(), account.as_bytes())
}

/// Checks a block's claimed PoS hash against the Eq. 7 chaining rule:
/// `claimed` must equal `Hash(prev_pos ‖ miner)`. A forged block — one
/// whose miner never earned the hit — fails this because the chained hash
/// is a pure function of public inputs it cannot choose.
pub fn verify_pos_linkage(prev_pos: &Digest, miner: &AccountId, claimed: &Digest) -> bool {
    next_pos_hash(prev_pos, miner) == *claimed
}

/// The pre-fast-path implementation — the generic streaming hasher —
/// kept as the uncached runtime reference: [`run_round`] chains hashes
/// through it so the `pos_hit_cache: false` path runs the code exactly as
/// it stood before the fixed-shape fast path landed. Bit-identical to
/// [`next_pos_hash`] (pinned by `next_pos_hash_matches_streaming_reference`).
fn next_pos_hash_streaming(prev: &Digest, account: &AccountId) -> Digest {
    edgechain_crypto::sha256_pair(prev.as_bytes(), account.as_bytes())
}

/// A node's hit for the current round: `POSHash(t+1, i) mod M`, taken as
/// the leading 64 bits of the chained hash.
pub fn hit(prev_pos_hash: &Digest, account: &AccountId) -> u64 {
    next_pos_hash(prev_pos_hash, account).to_u64()
}

/// The expectation-time amendment `B`, kept as an exact reduced rational.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Amendment {
    num: u128,
    den: u128,
}

impl Amendment {
    /// Computes `B = M / ((n+1) · t0 · Ū)` from the per-node contribution
    /// values `U_i = S_i · Q_i` (Eq. 14, at equality).
    ///
    /// Zero contributions are clamped to 1, matching the paper's rule that
    /// every node holds at least one token and stores at least the last
    /// block.
    ///
    /// # Panics
    ///
    /// Panics if `us` is empty or `t0_secs` is zero.
    pub fn compute(us: &[u64], t0_secs: u64) -> Self {
        assert!(!us.is_empty(), "need at least one node");
        assert!(t0_secs > 0, "expected block time must be positive");
        let n = us.len() as u128;
        let sum_u: u128 = us.iter().map(|&u| u.max(1) as u128).sum();
        // Ū = sum_u / n ⇒ B = M·n / ((n+1)·t0·sum_u).
        let num = HIT_MODULUS * n;
        let den = (n + 1) * t0_secs as u128 * sum_u;
        Self::reduced(num, den)
    }

    /// Builds an amendment from an explicit fraction (used by tests and the
    /// ablation benches).
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn from_fraction(num: u128, den: u128) -> Self {
        assert!(den != 0, "denominator must be nonzero");
        Self::reduced(num, den)
    }

    fn reduced(num: u128, den: u128) -> Self {
        let g = gcd(num.max(1), den);
        Amendment {
            num: num / g,
            den: den / g,
        }
    }

    /// Numerator of the reduced fraction.
    pub fn numerator(&self) -> u128 {
        self.num
    }

    /// Denominator of the reduced fraction.
    pub fn denominator(&self) -> u128 {
        self.den
    }

    /// `B` as a float, for reporting only.
    pub fn as_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// The target value `R_i = U_i · t · B`, rounded down (saturating).
    pub fn target(&self, u_i: u64, t_secs: u64) -> u128 {
        let lhs = (u_i as u128)
            .checked_mul(t_secs as u128)
            .and_then(|x| x.checked_mul(self.num));
        match lhs {
            Some(v) => v / self.den,
            None => u128::MAX,
        }
    }

    /// Whether node with contribution `u_i` may mine at `t_secs` after the
    /// previous block: the paper's condition `h_i ≤ R_i` (Eq. 9).
    pub fn meets_target(&self, hit: u64, u_i: u64, t_secs: u64) -> bool {
        self.target(u_i, t_secs) >= hit as u128
    }

    /// The first whole second at which `h ≤ U·t·B` holds:
    /// `t = max(1, ⌈h·den / (U·num)⌉)`, capped at [`MAX_DELAY_SECS`].
    ///
    /// This closed form is exactly the paper's once-per-second loop
    /// (§V-C) fast-forwarded; [`Amendment::meets_target`] at the returned
    /// time always holds, and never at `t − 1`.
    pub fn mining_delay_secs(&self, hit: u64, u_i: u64) -> u64 {
        let u = u_i.max(1) as u128;
        let denom = u.saturating_mul(self.num);
        if denom == 0 {
            return MAX_DELAY_SECS;
        }
        let numer = (hit as u128).saturating_mul(self.den);
        let t = numer.div_ceil(denom);
        (t.max(1)).min(MAX_DELAY_SECS as u128) as u64
    }

    /// [`Amendment::mining_delay_secs`] without the 128-bit division: a
    /// floating-point estimate of the quotient, fixed up to the exact
    /// ceiling by at most a handful of 128-bit multiplications. Division
    /// by a non-constant `u128` costs an order of magnitude more than
    /// multiplication, and the cached PoS round pays it once per
    /// candidate. Bit-identical to the exact form (pinned by
    /// `fast_delay_matches_exact`).
    pub fn mining_delay_secs_fast(&self, hit: u64, u_i: u64) -> u64 {
        let u = u_i.max(1) as u128;
        let denom = u.saturating_mul(self.num);
        if denom == 0 {
            return MAX_DELAY_SECS;
        }
        let numer = (hit as u128).saturating_mul(self.den);
        // The estimate's relative error is ~2⁻⁵², so anything safely past
        // the delay cap is the cap — no exact quotient needed.
        let est = (numer as f64 / denom as f64) as u128;
        if est > 2 * MAX_DELAY_SECS as u128 {
            return MAX_DELAY_SECS;
        }
        // est is within ±2 of the true floor here; start just below and
        // walk up to the least t with t·denom ≥ numer (the ceiling). A
        // saturated product is a true "≥ numer" (the real value is even
        // larger), so saturating_mul keeps the comparison exact.
        let mut t = est.saturating_sub(2);
        while t.saturating_mul(denom) < numer {
            t += 1;
        }
        (t.max(1)).min(MAX_DELAY_SECS as u128) as u64
    }
}

impl fmt::Display for Amendment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B={}/{} (≈{:.3e})", self.num, self.den, self.as_f64())
    }
}

fn gcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Outcome of one mining round: who mines, when, and with what credentials.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MiningOutcome {
    /// Index (into the candidates slice) of the winner.
    pub winner: usize,
    /// Seconds after the previous block at which the winner's condition
    /// first holds.
    pub delay_secs: u64,
    /// The winner's hit.
    pub hit: u64,
    /// The new `POSHash` to embed in the block.
    pub new_pos_hash: Digest,
}

/// One mining candidate: account plus contribution `U_i = S_i · Q_i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Candidate {
    /// The node's account.
    pub account: AccountId,
    /// `S_i` — token balance.
    pub tokens: u64,
    /// `Q_i` — number of stored data items/blocks (≥ 1 per the paper).
    pub stored_items: u64,
}

impl Candidate {
    /// The contribution `U_i = S_i · Q_i` (both floored at 1, saturating).
    pub fn contribution(&self) -> u64 {
        self.tokens.max(1).saturating_mul(self.stored_items.max(1))
    }
}

/// Runs one full PoS round: computes `B` from the candidates, each node's
/// hit and earliest mining time, and returns the winner (ties broken by
/// smaller hit, then lower index — every node applies the same rule, so the
/// round is deterministic network-wide).
///
/// # Panics
///
/// Panics if `candidates` is empty or `t0_secs` is zero.
pub fn run_round(prev_pos_hash: &Digest, candidates: &[Candidate], t0_secs: u64) -> MiningOutcome {
    assert!(!candidates.is_empty(), "need at least one candidate");
    telemetry::counter_add("pos.rounds", 1);
    let outcome = telemetry::time_wall("pos.round_ns", || {
        let us: Vec<u64> = candidates.iter().map(|c| c.contribution()).collect();
        let b = Amendment::compute(&us, t0_secs);
        let mut best: Option<(u64, u64, usize)> = None; // (delay, hit, idx)
        for (idx, c) in candidates.iter().enumerate() {
            let h = next_pos_hash_streaming(prev_pos_hash, &c.account).to_u64();
            let delay = b.mining_delay_secs(h, us[idx]);
            let key = (delay, h, idx);
            if best.is_none_or(|cur| key < cur) {
                best = Some(key);
            }
        }
        let (delay_secs, winner_hit, winner) = best.expect("nonempty candidates");
        MiningOutcome {
            winner,
            delay_secs,
            hit: winner_hit,
            new_pos_hash: next_pos_hash_streaming(prev_pos_hash, &candidates[winner].account),
        }
    });
    if telemetry::is_enabled() {
        telemetry::record("pos.delay_secs", outcome.delay_secs as f64);
        telemetry::record("pos.hits_per_round", candidates.len() as f64);
    }
    outcome
}

/// Memoized PoS hits for one chain height, keyed by `POSHash_prev`.
///
/// A hit depends only on `(POSHash_prev, Account_i)` — not on tokens,
/// stored items, or time — and the network runs **two** rounds per block
/// against the same previous hash (one to schedule the mining event, one
/// to elect the winner when it fires; more under churn-driven reruns). The
/// table computes each candidate's chained digest once per height and
/// replays it for every later round; a round against a *different*
/// previous hash (a new block arrived) invalidates everything.
///
/// Purely deterministic: no RNG is consulted, and [`run_round_cached`]
/// returns bit-identical [`MiningOutcome`]s to [`run_round`] (pinned by
/// tests). Cache traffic lands on the `pos.hit_cache_hit` /
/// `pos.hit_cache_miss` counters.
#[derive(Debug, Clone, Default)]
pub struct HitTable {
    prev: Option<Digest>,
    digests: HashMap<AccountId, Digest, DigestKeyState>,
    /// The candidate account list served by the most recent call at this
    /// height, with its digests: the mine-round almost always repeats the
    /// schedule-round's list verbatim, which short-circuits to one vector
    /// comparison instead of per-account map lookups.
    last_accounts: Vec<AccountId>,
    last_digests: Vec<Digest>,
    /// The full outcome of the most recent cached round. A round is a pure
    /// function of `(POSHash_prev, candidates, t0)`, so when the mine-round
    /// repeats the schedule-round's inputs exactly (the common case — churn
    /// between the two only happens on crashes or expiry sweeps) the whole
    /// selection replays from here: no hashing *and* no target arithmetic.
    /// An empty candidate list marks the memo invalid (rounds are never
    /// empty), which lets invalidation keep the allocations.
    last_round: Option<LastRound>,
    /// Reused suffix buffer for the cold-height shared-prefix batch hash.
    scratch_suffixes: Vec<[u8; 32]>,
    /// Reused contribution buffer for the selection loop.
    scratch_us: Vec<u64>,
}

/// Memoized inputs → outcome of one full cached round.
#[derive(Debug, Clone)]
struct LastRound {
    candidates: Vec<Candidate>,
    t0_secs: u64,
    outcome: MiningOutcome,
}

/// Accounts are SHA-256 outputs — already uniformly distributed — so the
/// hit table's map keys on their first eight bytes directly instead of
/// paying SipHash per probe. Iteration order is never consulted, keeping
/// runs deterministic.
#[derive(Debug, Clone, Copy, Default)]
struct DigestKeyState;

#[derive(Debug, Clone, Copy, Default)]
struct DigestKeyHasher(u64);

impl std::hash::Hasher for DigestKeyHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut buf = [0u8; 8];
        let n = bytes.len().min(8);
        buf[..n].copy_from_slice(&bytes[..n]);
        self.0 ^= u64::from_le_bytes(buf);
    }
}

impl std::hash::BuildHasher for DigestKeyState {
    type Hasher = DigestKeyHasher;

    fn build_hasher(&self) -> DigestKeyHasher {
        DigestKeyHasher(0)
    }
}

impl HitTable {
    /// An empty table (no height keyed yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of accounts whose digest is cached for the current height.
    /// (On a cold height the digests live only in the last-round vectors;
    /// the map is materialized lazily on the first partial-overlap round.)
    pub fn len(&self) -> usize {
        self.digests.len().max(self.last_accounts.len())
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.digests.is_empty() && self.last_accounts.is_empty()
    }

    /// Drops every cached digest (e.g. after adopting a foreign chain).
    pub fn invalidate(&mut self) {
        self.prev = None;
        self.digests.clear();
        self.last_accounts.clear();
        self.last_digests.clear();
        if let Some(last) = &mut self.last_round {
            last.candidates.clear();
        }
    }

    /// Keys the table to `prev`, dropping stale entries, then leaves the
    /// chained digest per candidate (in candidate order) in
    /// `last_digests`, computing the missing ones with the shared-prefix
    /// batch hash. Callers borrow the slice afterwards — no per-round
    /// digest vector is allocated or cloned.
    fn prepare(&mut self, prev: &Digest, candidates: &[Candidate]) {
        if self.prev != Some(*prev) {
            self.prev = Some(*prev);
            self.digests.clear();
            self.last_accounts.clear();
            self.last_digests.clear();
            if let Some(last) = &mut self.last_round {
                last.candidates.clear();
            }
        }
        // Verbatim repeat of the last round's candidate list (the common
        // mine-after-schedule case): one vector comparison, zero hashing.
        if self.last_accounts.len() == candidates.len()
            && candidates
                .iter()
                .zip(&self.last_accounts)
                .all(|(c, a)| c.account == *a)
        {
            telemetry::counter_add("pos.hit_cache_hit", candidates.len() as u64);
            return;
        }
        // Cold height: batch-hash the whole list straight into the
        // last-round vectors and skip the map — it only materializes when
        // a later round at this height overlaps partially (churn).
        if self.digests.is_empty() && self.last_accounts.is_empty() {
            self.scratch_suffixes.clear();
            self.scratch_suffixes
                .extend(candidates.iter().map(|c| *c.account.as_bytes()));
            telemetry::counter_add("pos.hit_cache_miss", candidates.len() as u64);
            self.last_accounts
                .extend(candidates.iter().map(|c| c.account));
            self.last_digests = sha256_many_pair64(prev.as_bytes(), &self.scratch_suffixes);
            return;
        }
        // Partially overlapping list: fold the cold round's vectors into
        // the map first so its digests still count as cached.
        for (a, d) in self.last_accounts.iter().zip(&self.last_digests) {
            self.digests.entry(*a).or_insert(*d);
        }
        let missing: Vec<usize> = (0..candidates.len())
            .filter(|&i| !self.digests.contains_key(&candidates[i].account))
            .collect();
        if !missing.is_empty() {
            let suffixes: Vec<[u8; 32]> = missing
                .iter()
                .map(|&i| *candidates[i].account.as_bytes())
                .collect();
            for (&i, digest) in missing
                .iter()
                .zip(sha256_many_pair64(prev.as_bytes(), &suffixes))
            {
                self.digests.insert(candidates[i].account, digest);
            }
        }
        telemetry::counter_add(
            "pos.hit_cache_hit",
            (candidates.len() - missing.len()) as u64,
        );
        telemetry::counter_add("pos.hit_cache_miss", missing.len() as u64);
        self.last_accounts.clear();
        self.last_accounts
            .extend(candidates.iter().map(|c| c.account));
        let map = &self.digests;
        self.last_digests.clear();
        self.last_digests
            .extend(candidates.iter().map(|c| map[&c.account]));
    }
}

/// [`run_round`] through the [`HitTable`]: bit-identical outcome, but each
/// candidate's chained hash is computed at most once per chain height
/// instead of once per round, and cold heights hash in one batch.
///
/// # Panics
///
/// Panics if `candidates` is empty or `t0_secs` is zero.
pub fn run_round_cached(
    prev_pos_hash: &Digest,
    candidates: &[Candidate],
    t0_secs: u64,
    table: &mut HitTable,
) -> MiningOutcome {
    assert!(!candidates.is_empty(), "need at least one candidate");
    telemetry::counter_add("pos.rounds", 1);
    let outcome = telemetry::time_wall("pos.round_ns", || {
        // The round is a pure function of its inputs: an exact repeat of
        // the previous cached round (same prev hash, candidates, and t0)
        // replays the memoized outcome wholesale.
        if table.prev == Some(*prev_pos_hash) {
            if let Some(last) = &table.last_round {
                if last.t0_secs == t0_secs && last.candidates == candidates {
                    telemetry::counter_add("pos.hit_cache_hit", candidates.len() as u64);
                    return last.outcome.clone();
                }
            }
        }
        table.prepare(prev_pos_hash, candidates);
        table.scratch_us.clear();
        table
            .scratch_us
            .extend(candidates.iter().map(|c| c.contribution()));
        let b = Amendment::compute(&table.scratch_us, t0_secs);
        let mut best: Option<(u64, u64, usize)> = None; // (delay, hit, idx)
        for (idx, digest) in table.last_digests.iter().enumerate() {
            let h = digest.to_u64();
            let delay = b.mining_delay_secs_fast(h, table.scratch_us[idx]);
            let key = (delay, h, idx);
            if best.is_none_or(|cur| key < cur) {
                best = Some(key);
            }
        }
        let (delay_secs, winner_hit, winner) = best.expect("nonempty candidates");
        let outcome = MiningOutcome {
            winner,
            delay_secs,
            hit: winner_hit,
            new_pos_hash: table.last_digests[winner],
        };
        match &mut table.last_round {
            Some(last) => {
                last.candidates.clear();
                last.candidates.extend_from_slice(candidates);
                last.t0_secs = t0_secs;
                last.outcome = outcome.clone();
            }
            None => {
                table.last_round = Some(LastRound {
                    candidates: candidates.to_vec(),
                    t0_secs,
                    outcome: outcome.clone(),
                });
            }
        }
        outcome
    });
    if telemetry::is_enabled() {
        telemetry::record("pos.delay_secs", outcome.delay_secs as f64);
        telemetry::record("pos.hits_per_round", candidates.len() as f64);
    }
    outcome
}

/// Verifies a claimed mining result, as every receiving node does before
/// accepting a block: recomputes the hit from public information and checks
/// the target condition at the claimed time (and that it does **not** hold
/// a second earlier, i.e. the miner did not wait artificially long to
/// inflate its target — the paper's "first to meet this inequality" rule).
pub fn verify_claim(
    prev_pos_hash: &Digest,
    claimed: &Candidate,
    all_us: &[u64],
    t0_secs: u64,
    claimed_delay_secs: u64,
) -> bool {
    if claimed_delay_secs == 0 {
        return false;
    }
    let b = Amendment::compute(all_us, t0_secs);
    let h = hit(prev_pos_hash, &claimed.account);
    let u = claimed.contribution();
    if !b.meets_target(h, u, claimed_delay_secs) {
        return false;
    }
    // Minimality: the condition must not already hold one second earlier.
    claimed_delay_secs == 1 || !b.meets_target(h, u, claimed_delay_secs - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgechain_crypto::sha256;

    fn account(seed: u64) -> AccountId {
        crate::account::Identity::from_seed(seed).account()
    }

    #[test]
    fn hits_are_deterministic_and_distinct() {
        let prev = sha256(b"genesis");
        let a = account(1);
        let b = account(2);
        assert_eq!(hit(&prev, &a), hit(&prev, &a));
        assert_ne!(hit(&prev, &a), hit(&prev, &b));
        // A different previous hash reshuffles hits.
        let prev2 = sha256(b"other");
        assert_ne!(hit(&prev, &a), hit(&prev2, &a));
    }

    #[test]
    fn amendment_reduces_fraction() {
        let b = Amendment::from_fraction(10, 4);
        assert_eq!(b.numerator(), 5);
        assert_eq!(b.denominator(), 2);
        assert!((b.as_f64() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn target_grows_linearly_in_time() {
        let b = Amendment::from_fraction(7, 3);
        assert_eq!(b.target(10, 3), 70);
        assert!(b.target(10, 6) == 140);
        assert!(b.target(10, 6) > b.target(10, 3));
    }

    #[test]
    fn mining_delay_is_minimal() {
        let us = [4u64, 9, 1, 16];
        let b = Amendment::compute(&us, 60);
        for (i, &u) in us.iter().enumerate() {
            let h = hit(&sha256(b"x"), &account(i as u64));
            let t = b.mining_delay_secs(h, u);
            assert!(b.meets_target(h, u, t), "condition holds at t");
            if t > 1 {
                assert!(!b.meets_target(h, u, t - 1), "t is minimal");
            }
        }
    }

    #[test]
    fn bigger_contribution_never_slower() {
        let b = Amendment::from_fraction(HIT_MODULUS, 1_000_000);
        let h = 0xdead_beef_0000_0000u64;
        let slow = b.mining_delay_secs(h, 2);
        let fast = b.mining_delay_secs(h, 20);
        assert!(fast <= slow);
    }

    #[test]
    fn expected_interval_close_to_t0_homogeneous() {
        // 20 equal nodes, t0 = 60 s; average winning delay over many rounds
        // must be close to 60.
        let n = 20usize;
        let t0 = 60u64;
        let candidates: Vec<Candidate> = (0..n)
            .map(|i| Candidate {
                account: account(i as u64),
                tokens: 3,
                stored_items: 5,
            })
            .collect();
        let mut prev = sha256(b"seed");
        let rounds = 400;
        let mut total = 0u64;
        for _ in 0..rounds {
            let out = run_round(&prev, &candidates, t0);
            total += out.delay_secs;
            prev = out.new_pos_hash;
        }
        let mean = total as f64 / rounds as f64;
        // Discretization to whole seconds plus sampling noise: ±20%.
        assert!(
            (mean - t0 as f64).abs() < 0.2 * t0 as f64,
            "mean interval {mean}, want ≈{t0}"
        );
    }

    #[test]
    fn contributors_win_more_often() {
        // One node with 10× the contribution should win far more rounds.
        let mut candidates: Vec<Candidate> = (0..10)
            .map(|i| Candidate {
                account: account(i),
                tokens: 1,
                stored_items: 1,
            })
            .collect();
        candidates[0].tokens = 10;
        let mut prev = sha256(b"w");
        let mut wins = vec![0u32; candidates.len()];
        for _ in 0..300 {
            let out = run_round(&prev, &candidates, 60);
            wins[out.winner] += 1;
            prev = out.new_pos_hash;
        }
        let others_max = wins[1..].iter().copied().max().unwrap();
        assert!(
            wins[0] > 2 * others_max,
            "heavy contributor won {} vs max other {}",
            wins[0],
            others_max
        );
    }

    #[test]
    fn round_is_deterministic() {
        let candidates: Vec<Candidate> = (0..5)
            .map(|i| Candidate {
                account: account(i),
                tokens: i + 1,
                stored_items: 2,
            })
            .collect();
        let prev = sha256(b"det");
        assert_eq!(
            run_round(&prev, &candidates, 60),
            run_round(&prev, &candidates, 60)
        );
    }

    #[test]
    fn verify_accepts_honest_claim() {
        let candidates: Vec<Candidate> = (0..8)
            .map(|i| Candidate {
                account: account(i),
                tokens: 2,
                stored_items: 3,
            })
            .collect();
        let us: Vec<u64> = candidates.iter().map(|c| c.contribution()).collect();
        let prev = sha256(b"v");
        let out = run_round(&prev, &candidates, 60);
        assert!(verify_claim(
            &prev,
            &candidates[out.winner],
            &us,
            60,
            out.delay_secs
        ));
    }

    #[test]
    fn verify_rejects_early_or_padded_claims() {
        let candidates: Vec<Candidate> = (0..8)
            .map(|i| Candidate {
                account: account(i),
                tokens: 2,
                stored_items: 3,
            })
            .collect();
        let us: Vec<u64> = candidates.iter().map(|c| c.contribution()).collect();
        let prev = sha256(b"v2");
        let out = run_round(&prev, &candidates, 60);
        // Claiming to have mined earlier than allowed fails.
        if out.delay_secs > 1 {
            assert!(!verify_claim(
                &prev,
                &candidates[out.winner],
                &us,
                60,
                out.delay_secs - 1
            ));
        }
        // Claiming much later (padding the target) also fails minimality.
        assert!(!verify_claim(
            &prev,
            &candidates[out.winner],
            &us,
            60,
            out.delay_secs + 10
        ));
        // Zero delay is never valid.
        assert!(!verify_claim(&prev, &candidates[out.winner], &us, 60, 0));
    }

    #[test]
    fn verify_rejects_forged_contribution() {
        // A cheater inflates its contribution 100× to compute an earlier
        // mining time. Verifiers recompute S and Q from chain history
        // (paper §V-A: "S and Q of each node can be obtained and validated
        // through the history of the blockchain"), so verification runs
        // against the *true* candidate and the forged-early delay fails.
        let candidates: Vec<Candidate> = (0..8)
            .map(|i| Candidate {
                account: account(i),
                tokens: 1,
                stored_items: 1,
            })
            .collect();
        let us: Vec<u64> = candidates.iter().map(|c| c.contribution()).collect();
        let prev = sha256(b"v3");
        let cheater = candidates[3];
        let mut forged = cheater;
        forged.tokens = 100;
        let b = Amendment::compute(&us, 60);
        let h = hit(&prev, &cheater.account);
        let honest_delay = b.mining_delay_secs(h, cheater.contribution());
        let forged_delay = b.mining_delay_secs(h, forged.contribution());
        assert!(forged_delay < honest_delay, "forging must look profitable");
        // Verified against chain-derived (true) contribution: rejected.
        assert!(!verify_claim(&prev, &cheater, &us, 60, forged_delay));
        // The honest delay still verifies.
        assert!(verify_claim(&prev, &cheater, &us, 60, honest_delay));
    }

    #[test]
    fn next_pos_hash_matches_streaming_reference() {
        let mut prev = sha256(b"pin");
        for seed in 0..32u64 {
            let acct = account(seed);
            assert_eq!(
                next_pos_hash(&prev, &acct),
                next_pos_hash_streaming(&prev, &acct)
            );
            prev = next_pos_hash(&prev, &acct);
        }
    }

    fn round_candidates(n: u64) -> Vec<Candidate> {
        (0..n)
            .map(|i| Candidate {
                account: account(i),
                tokens: i % 7 + 1,
                stored_items: i % 3 + 1,
            })
            .collect()
    }

    #[test]
    fn cached_round_is_bit_identical_to_reference() {
        let mut table = HitTable::new();
        let mut prev = sha256(b"cache-pin");
        for height in 0..50u64 {
            let candidates = round_candidates(height % 13 + 1);
            let reference = run_round(&prev, &candidates, 60);
            // Two rounds per height, like the live network: the second is
            // served wholly from the table.
            assert_eq!(
                run_round_cached(&prev, &candidates, 60, &mut table),
                reference,
                "height {height}, cold"
            );
            assert_eq!(
                run_round_cached(&prev, &candidates, 60, &mut table),
                reference,
                "height {height}, warm"
            );
            prev = reference.new_pos_hash;
        }
    }

    #[test]
    fn hit_table_invalidates_on_new_prev() {
        let mut table = HitTable::new();
        let candidates = round_candidates(8);
        let _ = run_round_cached(&sha256(b"h1"), &candidates, 60, &mut table);
        assert_eq!(table.len(), 8);
        // Same prev: entries survive. New prev: table rekeys from scratch.
        let _ = run_round_cached(&sha256(b"h1"), &candidates[..3], 60, &mut table);
        assert_eq!(table.len(), 8);
        let _ = run_round_cached(&sha256(b"h2"), &candidates[..3], 60, &mut table);
        assert_eq!(table.len(), 3);
        table.invalidate();
        assert!(table.is_empty());
    }

    #[test]
    fn hit_cache_counters_track_hits_and_misses() {
        telemetry::enable();
        let mut table = HitTable::new();
        let candidates = round_candidates(5);
        let prev = sha256(b"counted");
        let _ = run_round_cached(&prev, &candidates, 60, &mut table);
        let _ = run_round_cached(&prev, &candidates, 60, &mut table);
        let mut session = telemetry::finish().expect("enabled");
        let snap = session.registry.snapshot();
        assert_eq!(snap.counter("pos.hit_cache_miss"), Some(5));
        assert_eq!(snap.counter("pos.hit_cache_hit"), Some(5));
    }

    #[test]
    fn fast_delay_matches_exact() {
        // Sweep amendments from tiny to extreme fractions against hits
        // covering the edges and a deterministic pseudo-random spread: the
        // multiplicative fix-up must land on div_ceil's answer every time.
        let fractions = [
            (1u128, 1u128),
            (HIT_MODULUS, 1),
            (1, HIT_MODULUS),
            (HIT_MODULUS * 50, 51 * 60 * 1000),
            (u128::MAX / 2, 3),
            (3, u128::MAX / 2),
            (u128::MAX, u128::MAX),
        ];
        let mut hits: Vec<u64> = vec![0, 1, 2, 1000, u64::MAX - 1, u64::MAX];
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..200 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            hits.push(x);
        }
        let us = [0u64, 1, 2, 7, 1 << 20, u64::MAX];
        for &(num, den) in &fractions {
            let b = Amendment::from_fraction(num, den);
            for &h in &hits {
                for &u in &us {
                    assert_eq!(
                        b.mining_delay_secs_fast(h, u),
                        b.mining_delay_secs(h, u),
                        "B={num}/{den}, h={h}, u={u}"
                    );
                }
            }
        }
    }

    #[test]
    fn candidate_contribution_floors_at_one() {
        let c = Candidate {
            account: account(1),
            tokens: 0,
            stored_items: 0,
        };
        assert_eq!(c.contribution(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_amendment_panics() {
        let _ = Amendment::compute(&[], 60);
    }
}
