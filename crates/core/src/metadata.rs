//! Metadata items — the block payload.
//!
//! Instead of replicating megabyte-scale data items everywhere, blocks
//! carry small *metadata items* describing each data item (paper §III-B):
//! data type, timestamp, location, producer (+ signature), the nodes
//! assigned to store the data, a validity period, and free-form properties.
//! Consumers search metadata to discover data, then fetch the bytes from a
//! storing node and verify integrity against the producer's signature.

use crate::account::AccountId;
use edgechain_crypto::{KeyPair, PublicKey, Signature};
use edgechain_sim::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique identifier of a data item (assigned by the producer).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct DataId(pub u64);

impl fmt::Display for DataId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}", self.0)
    }
}

/// Category of the described data, mirroring the paper's examples
/// (air-quality readings, traffic pictures, key exchange records, …).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Environmental sensing, e.g. `AirQuality/PM2.5`.
    Sensing(String),
    /// Media content, e.g. `Picture/Traffic`, `Video/Short`.
    Media(String),
    /// Public key distribution records.
    KeyExchange,
    /// Anything else.
    Other(String),
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Sensing(s) => write!(f, "Sensing/{s}"),
            DataType::Media(s) => write!(f, "Media/{s}"),
            DataType::KeyExchange => write!(f, "KeyExchange"),
            DataType::Other(s) => write!(f, "Other/{s}"),
        }
    }
}

/// A geographic tag, e.g. `NewYork,NY/40.72,-74.00`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct Location {
    /// Free-form place label.
    pub label: String,
    /// Latitude-like coordinate (or field x in simulations).
    pub x: f64,
    /// Longitude-like coordinate (or field y in simulations).
    pub y: f64,
}

/// One metadata item. The signature covers every descriptive field
/// *except* `storing_nodes`, which is computed by the allocation engine
/// after signing (each receiving node recomputes and checks it against the
/// block).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetadataItem {
    /// Identifier of the described data item.
    pub data_id: DataId,
    /// What the data is.
    pub data_type: DataType,
    /// Production time, in seconds since simulation start.
    pub produced_at_secs: u64,
    /// Where the data was produced.
    pub location: Location,
    /// Producer account.
    pub producer: AccountId,
    /// Producer public key (shipped so receivers can verify the signature).
    pub producer_key: PublicKey,
    /// Producer's signature over the descriptive fields.
    pub signature: Signature,
    /// Nodes assigned to store the data item (filled by the miner from the
    /// allocation engine).
    pub storing_nodes: Vec<NodeId>,
    /// Validity period in minutes (paper examples: 720, 1440, 2880).
    pub valid_minutes: u64,
    /// Free-form properties (`'Camera'`, a key, …).
    pub properties: Option<String>,
    /// Size of the described data item in bytes.
    pub data_size: u64,
}

impl MetadataItem {
    /// Creates and signs a metadata item. `storing_nodes` starts empty;
    /// the mining path fills it in.
    #[allow(clippy::too_many_arguments)]
    pub fn new_signed(
        keys: &KeyPair,
        data_id: DataId,
        data_type: DataType,
        produced_at_secs: u64,
        location: Location,
        valid_minutes: u64,
        properties: Option<String>,
        data_size: u64,
    ) -> Self {
        let producer_key = keys.public_key();
        let producer = AccountId::from_public_key(&producer_key);
        let payload = signing_payload(
            data_id,
            &data_type,
            produced_at_secs,
            &location,
            &producer,
            valid_minutes,
            properties.as_deref(),
            data_size,
        );
        let signature = keys.sign(&payload);
        MetadataItem {
            data_id,
            data_type,
            produced_at_secs,
            location,
            producer,
            producer_key,
            signature,
            storing_nodes: Vec::new(),
            valid_minutes,
            properties,
            data_size,
        }
    }

    /// Verifies the producer signature and that the shipped key matches the
    /// producer account.
    pub fn verify(&self) -> bool {
        if AccountId::from_public_key(&self.producer_key) != self.producer {
            return false;
        }
        let payload = signing_payload(
            self.data_id,
            &self.data_type,
            self.produced_at_secs,
            &self.location,
            &self.producer,
            self.valid_minutes,
            self.properties.as_deref(),
            self.data_size,
        );
        self.producer_key.verify(&payload, &self.signature)
    }

    /// Whether the data item is still valid at `now_secs`.
    pub fn is_valid_at(&self, now_secs: u64) -> bool {
        now_secs < self.produced_at_secs + self.valid_minutes * 60
    }

    /// Canonical bytes used for Merkle leaves and size accounting.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut out = signing_payload(
            self.data_id,
            &self.data_type,
            self.produced_at_secs,
            &self.location,
            &self.producer,
            self.valid_minutes,
            self.properties.as_deref(),
            self.data_size,
        );
        out.extend_from_slice(&self.signature.to_bytes());
        for n in &self.storing_nodes {
            out.extend_from_slice(&(n.0 as u64).to_be_bytes());
        }
        out
    }

    /// Exact wire size of the metadata item in bytes (the length of
    /// [`crate::codec::encode_metadata`]'s output).
    pub fn wire_size(&self) -> u64 {
        crate::codec::encode_metadata(self).len() as u64
    }
}

#[allow(clippy::too_many_arguments)]
fn signing_payload(
    data_id: DataId,
    data_type: &DataType,
    produced_at_secs: u64,
    location: &Location,
    producer: &AccountId,
    valid_minutes: u64,
    properties: Option<&str>,
    data_size: u64,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(128);
    out.extend_from_slice(b"edgechain-metadata-v1\0");
    out.extend_from_slice(&data_id.0.to_be_bytes());
    out.extend_from_slice(data_type.to_string().as_bytes());
    out.push(0);
    out.extend_from_slice(&produced_at_secs.to_be_bytes());
    out.extend_from_slice(location.label.as_bytes());
    out.push(0);
    out.extend_from_slice(&location.x.to_be_bytes());
    out.extend_from_slice(&location.y.to_be_bytes());
    out.extend_from_slice(producer.as_bytes());
    out.extend_from_slice(&valid_minutes.to_be_bytes());
    if let Some(p) = properties {
        out.extend_from_slice(p.as_bytes());
    }
    out.push(0);
    out.extend_from_slice(&data_size.to_be_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seed: u64) -> (KeyPair, MetadataItem) {
        let keys = KeyPair::from_seed(seed);
        let item = MetadataItem::new_signed(
            &keys,
            DataId(42),
            DataType::Sensing("PM2.5".into()),
            660,
            Location {
                label: "NewYork,NY".into(),
                x: 40.72,
                y: -74.0,
            },
            1440,
            None,
            1_000_000,
        );
        (keys, item)
    }

    #[test]
    fn fresh_item_verifies() {
        let (_, item) = sample(1);
        assert!(item.verify());
    }

    #[test]
    fn tampered_fields_fail_verification() {
        let (_, item) = sample(2);
        let mut t = item.clone();
        t.data_size = 2_000_000;
        assert!(!t.verify());
        let mut t = item.clone();
        t.valid_minutes = 99999;
        assert!(!t.verify());
        let mut t = item.clone();
        t.produced_at_secs += 1;
        assert!(!t.verify());
        let mut t = item;
        t.location.x += 0.5;
        assert!(!t.verify());
    }

    #[test]
    fn wrong_key_fails_verification() {
        let (_, mut item) = sample(3);
        item.producer_key = KeyPair::from_seed(999).public_key();
        assert!(!item.verify());
    }

    #[test]
    fn storing_nodes_do_not_invalidate_signature() {
        let (_, mut item) = sample(4);
        item.storing_nodes = vec![NodeId(1), NodeId(5)];
        assert!(item.verify());
    }

    #[test]
    fn validity_window() {
        let (_, item) = sample(5);
        assert!(item.is_valid_at(660));
        assert!(item.is_valid_at(660 + 1440 * 60 - 1));
        assert!(!item.is_valid_at(660 + 1440 * 60));
    }

    #[test]
    fn canonical_bytes_reflect_storing_nodes() {
        let (_, mut item) = sample(6);
        let before = item.canonical_bytes();
        item.storing_nodes.push(NodeId(3));
        assert_ne!(before, item.canonical_bytes());
    }

    #[test]
    fn wire_size_is_plausible() {
        let (_, item) = sample(7);
        let sz = item.wire_size();
        assert!(sz > 100, "metadata should be ~hundreds of bytes, got {sz}");
        assert!(
            sz < 1000,
            "metadata must stay far below data size, got {sz}"
        );
    }

    #[test]
    fn data_type_display() {
        assert_eq!(DataType::KeyExchange.to_string(), "KeyExchange");
        assert_eq!(
            DataType::Media("Traffic".into()).to_string(),
            "Media/Traffic"
        );
    }
}
