//! The raft replica state machine (sans-I/O).
//!
//! [`RaftNode`] is a pure state machine: callers feed it time via
//! [`RaftNode::tick`] and messages via [`RaftNode::handle`], and it returns
//! the envelopes to transmit. This makes it driveable both by the
//! deterministic test cluster ([`crate::cluster`]) and by the edge network
//! simulation, where raft provides the paper's "general information
//! consensus" and its heartbeat traffic is charged to the overhead metrics.

use crate::message::{Envelope, LogEntry, LogIndex, Message, PeerId, Term};
use edgechain_sim::SimTime;
use edgechain_telemetry::{self as telemetry, trace_event};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Raft timing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RaftConfig {
    /// Lower bound of the randomized election timeout.
    pub election_timeout_min: SimTime,
    /// Upper bound (exclusive) of the randomized election timeout.
    pub election_timeout_max: SimTime,
    /// Leader heartbeat period; must be well below the election timeout.
    pub heartbeat_interval: SimTime,
    /// Cap on entries shipped per `AppendEntries` message.
    pub max_entries_per_append: usize,
    /// Run the Raft §9.6 pre-vote phase before real elections: a node asks
    /// whether it *would* win without bumping its term, so partitioned
    /// nodes that flap back cannot depose a healthy leader. Off by default
    /// (classic raft).
    pub pre_vote: bool,
}

impl Default for RaftConfig {
    fn default() -> Self {
        RaftConfig {
            election_timeout_min: SimTime::from_millis(300),
            election_timeout_max: SimTime::from_millis(600),
            heartbeat_interval: SimTime::from_millis(100),
            max_entries_per_append: 64,
            pre_vote: false,
        }
    }
}

/// The three raft roles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Passive replica following a leader.
    Follower,
    /// Election in progress.
    Candidate,
    /// Elected leader for the current term.
    Leader,
}

/// Error returned by [`RaftNode::propose`] on a non-leader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotLeader {
    /// Best known current leader, if any.
    pub leader_hint: Option<PeerId>,
}

impl fmt::Display for NotLeader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.leader_hint {
            Some(l) => write!(f, "not leader; try {l}"),
            None => write!(f, "not leader; no known leader"),
        }
    }
}

impl std::error::Error for NotLeader {}

/// One raft replica.
///
/// # Examples
///
/// A single-node cluster elects itself and commits immediately:
///
/// ```
/// use edgechain_raft::{PeerId, RaftConfig, RaftNode, Role};
/// use edgechain_sim::SimTime;
///
/// let mut node: RaftNode<&str> =
///     RaftNode::new(PeerId(0), vec![PeerId(0)], RaftConfig::default(), 7);
/// node.tick(SimTime::from_secs(10)); // election timeout fires
/// assert_eq!(node.role(), Role::Leader);
/// node.propose("hello")?;
/// assert_eq!(node.take_committed(), vec![(1, "hello")]);
/// # Ok::<(), edgechain_raft::NotLeader>(())
/// ```
#[derive(Debug)]
pub struct RaftNode<C> {
    id: PeerId,
    cluster: Vec<PeerId>,
    config: RaftConfig,
    rng: StdRng,

    term: Term,
    voted_for: Option<PeerId>,
    /// Entries after `log_start` (the snapshot boundary).
    log: Vec<LogEntry<C>>,
    /// Index of the last entry covered by the snapshot (0 = none).
    log_start: LogIndex,
    /// Term of the entry at `log_start`.
    snapshot_term: Term,
    /// Committed commands `1..=log_start`, in order.
    snapshot: Vec<C>,
    commit_index: LogIndex,
    drained_index: LogIndex,

    role: Role,
    votes_received: HashSet<PeerId>,
    prevotes_received: HashSet<PeerId>,
    /// The would-be term of the pre-vote round in flight (0 = none).
    prevote_term: Term,
    next_index: HashMap<PeerId, LogIndex>,
    match_index: HashMap<PeerId, LogIndex>,
    leader_hint: Option<PeerId>,

    election_deadline: SimTime,
    heartbeat_due: SimTime,
    /// Last time a valid leader contacted this node (pre-vote grants are
    /// refused while this is fresh).
    last_leader_contact: SimTime,
}

impl<C: Clone> RaftNode<C> {
    /// Creates a follower at term 0.
    ///
    /// `cluster` must contain `id`. `seed` drives the randomized election
    /// timeouts, so identical seeds reproduce identical elections.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` does not contain `id`, or the timeout range is
    /// empty or not above the heartbeat interval.
    pub fn new(id: PeerId, cluster: Vec<PeerId>, config: RaftConfig, seed: u64) -> Self {
        assert!(cluster.contains(&id), "cluster must contain this node");
        assert!(
            config.election_timeout_min < config.election_timeout_max,
            "election timeout range must be nonempty"
        );
        assert!(
            config.heartbeat_interval < config.election_timeout_min,
            "heartbeat must be shorter than the election timeout"
        );
        let mut node = RaftNode {
            id,
            cluster,
            config,
            rng: StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15),
            term: 0,
            voted_for: None,
            log: Vec::new(),
            log_start: 0,
            snapshot_term: 0,
            snapshot: Vec::new(),
            commit_index: 0,
            drained_index: 0,
            role: Role::Follower,
            votes_received: HashSet::new(),
            prevotes_received: HashSet::new(),
            prevote_term: 0,
            next_index: HashMap::new(),
            match_index: HashMap::new(),
            leader_hint: None,
            election_deadline: SimTime::ZERO,
            heartbeat_due: SimTime::ZERO,
            last_leader_contact: SimTime::ZERO,
        };
        node.reset_election_deadline(SimTime::ZERO);
        node
    }

    /// This node's id.
    pub fn id(&self) -> PeerId {
        self.id
    }

    /// Current role.
    pub fn role(&self) -> Role {
        self.role
    }

    /// Current term.
    pub fn term(&self) -> Term {
        self.term
    }

    /// Highest committed log index.
    pub fn commit_index(&self) -> LogIndex {
        self.commit_index
    }

    /// Total logical log length (snapshot-covered prefix + retained tail).
    pub fn log_len(&self) -> LogIndex {
        self.log_start + self.log.len() as LogIndex
    }

    /// Number of entries physically retained (not compacted away).
    pub fn retained_log_len(&self) -> usize {
        self.log.len()
    }

    /// Index of the last snapshot-covered entry (0 when never compacted).
    pub fn log_start(&self) -> LogIndex {
        self.log_start
    }

    /// Entry at 1-based `index`, if still retained (compacted entries are
    /// gone; use [`RaftNode::take_committed`] to observe applied commands).
    pub fn entry(&self, index: LogIndex) -> Option<&LogEntry<C>> {
        if index <= self.log_start {
            return None;
        }
        self.log.get((index - self.log_start - 1) as usize)
    }

    /// Discards log entries up to `index` (clamped to the commit index),
    /// folding their commands into the snapshot (Raft §7). Returns the new
    /// snapshot boundary.
    pub fn compact_to(&mut self, index: LogIndex) -> LogIndex {
        let target = index.min(self.commit_index);
        if target <= self.log_start {
            return self.log_start;
        }
        let take = (target - self.log_start) as usize;
        self.snapshot_term = self.log[take - 1].term;
        for entry in self.log.drain(..take) {
            self.snapshot.push(entry.command);
        }
        self.log_start = target;
        self.log_start
    }

    /// Best-known leader (this node when it is leader).
    pub fn leader_hint(&self) -> Option<PeerId> {
        if self.role == Role::Leader {
            Some(self.id)
        } else {
            self.leader_hint
        }
    }

    /// Peers other than this node.
    fn peers(&self) -> impl Iterator<Item = PeerId> + '_ {
        let me = self.id;
        self.cluster.iter().copied().filter(move |&p| p != me)
    }

    fn majority(&self) -> usize {
        self.cluster.len() / 2 + 1
    }

    fn last_log_index(&self) -> LogIndex {
        self.log_start + self.log.len() as LogIndex
    }

    fn last_log_term(&self) -> Term {
        self.log.last().map_or(self.snapshot_term, |e| e.term)
    }

    fn term_at(&self, index: LogIndex) -> Option<Term> {
        if index == 0 {
            Some(0)
        } else if index == self.log_start {
            Some(self.snapshot_term)
        } else if index < self.log_start {
            None // compacted away
        } else {
            self.log
                .get((index - self.log_start - 1) as usize)
                .map(|e| e.term)
        }
    }

    fn reset_election_deadline(&mut self, now: SimTime) {
        let span = self.config.election_timeout_max.as_millis()
            - self.config.election_timeout_min.as_millis();
        let jitter = self.rng.gen_range(0..span.max(1));
        self.election_deadline =
            now + self.config.election_timeout_min + SimTime::from_millis(jitter);
    }

    /// Advances time. Returns messages to send (election or heartbeats).
    pub fn tick(&mut self, now: SimTime) -> Vec<Envelope<C>> {
        match self.role {
            Role::Leader => {
                if now >= self.heartbeat_due {
                    self.heartbeat_due = now + self.config.heartbeat_interval;
                    self.broadcast_append()
                } else {
                    Vec::new()
                }
            }
            Role::Follower | Role::Candidate => {
                if now >= self.election_deadline {
                    if self.config.pre_vote {
                        self.start_prevote(now)
                    } else {
                        self.start_election(now)
                    }
                } else {
                    Vec::new()
                }
            }
        }
    }

    /// Probes peers for a would-be election at `term + 1` without touching
    /// any persistent state (term, voted_for).
    fn start_prevote(&mut self, now: SimTime) -> Vec<Envelope<C>> {
        self.prevotes_received.clear();
        self.prevotes_received.insert(self.id);
        self.prevote_term = self.term + 1;
        self.reset_election_deadline(now);
        if self.prevotes_received.len() >= self.majority() {
            // Single-node cluster: no probe needed.
            return self.start_election(now);
        }
        let msg = Message::PreVote {
            term: self.term + 1,
            candidate: self.id,
            last_log_index: self.last_log_index(),
            last_log_term: self.last_log_term(),
        };
        self.peers()
            .map(|to| Envelope {
                to,
                message: msg.clone(),
            })
            .collect()
    }

    fn start_election(&mut self, now: SimTime) -> Vec<Envelope<C>> {
        self.prevote_term = 0;
        self.term += 1;
        telemetry::counter_add("raft.elections", 1);
        telemetry::counter_add("raft.term_changes", 1);
        trace_event!(
            "raft.election",
            now.as_millis(),
            node = self.id.0,
            term = self.term
        );
        self.role = Role::Candidate;
        self.voted_for = Some(self.id);
        self.votes_received.clear();
        self.votes_received.insert(self.id);
        self.leader_hint = None;
        self.reset_election_deadline(now);
        if self.votes_received.len() >= self.majority() {
            // Single-node cluster: win immediately.
            return self.become_leader(now);
        }
        let msg = Message::RequestVote {
            term: self.term,
            candidate: self.id,
            last_log_index: self.last_log_index(),
            last_log_term: self.last_log_term(),
        };
        self.peers()
            .map(|to| Envelope {
                to,
                message: msg.clone(),
            })
            .collect()
    }

    fn become_leader(&mut self, now: SimTime) -> Vec<Envelope<C>> {
        telemetry::counter_add("raft.leaders_elected", 1);
        trace_event!(
            "raft.leader",
            now.as_millis(),
            node = self.id.0,
            term = self.term
        );
        self.role = Role::Leader;
        self.heartbeat_due = now + self.config.heartbeat_interval;
        self.next_index.clear();
        self.match_index.clear();
        let next = self.last_log_index() + 1;
        for p in self.peers().collect::<Vec<_>>() {
            self.next_index.insert(p, next);
            self.match_index.insert(p, 0);
        }
        self.broadcast_append()
    }

    fn step_down(&mut self, term: Term) {
        if term != self.term {
            telemetry::counter_add("raft.term_changes", 1);
        }
        self.term = term;
        self.role = Role::Follower;
        self.voted_for = None;
        self.votes_received.clear();
        self.prevote_term = 0;
    }

    fn append_for(&self, peer: PeerId) -> Envelope<C> {
        let next = *self.next_index.get(&peer).unwrap_or(&1);
        if next <= self.log_start {
            // The entries this follower needs were compacted: ship the
            // snapshot instead (Raft §7).
            return Envelope {
                to: peer,
                message: Message::InstallSnapshot {
                    term: self.term,
                    leader: self.id,
                    last_included_index: self.log_start,
                    last_included_term: self.snapshot_term,
                    commands: self.snapshot.clone(),
                },
            };
        }
        let prev_log_index = next - 1;
        let prev_log_term = self.term_at(prev_log_index).unwrap_or(0);
        let from = (next - self.log_start - 1) as usize;
        let to_excl = self
            .log
            .len()
            .min(from + self.config.max_entries_per_append);
        let entries: Vec<LogEntry<C>> = if from < self.log.len() {
            self.log[from..to_excl].to_vec()
        } else {
            Vec::new()
        };
        Envelope {
            to: peer,
            message: Message::AppendEntries {
                term: self.term,
                leader: self.id,
                prev_log_index,
                prev_log_term,
                entries,
                leader_commit: self.commit_index,
            },
        }
    }

    fn broadcast_append(&mut self) -> Vec<Envelope<C>> {
        let envelopes: Vec<Envelope<C>> = self
            .peers()
            .collect::<Vec<_>>()
            .into_iter()
            .map(|p| self.append_for(p))
            .collect();
        telemetry::counter_add("raft.appends_sent", envelopes.len() as u64);
        envelopes
    }

    /// Proposes a command for replication.
    ///
    /// # Errors
    ///
    /// Returns [`NotLeader`] when this node is not the leader; the error
    /// carries a hint to the best-known leader for redirection.
    pub fn propose(&mut self, command: C) -> Result<LogIndex, NotLeader> {
        if self.role != Role::Leader {
            return Err(NotLeader {
                leader_hint: self.leader_hint(),
            });
        }
        self.log.push(LogEntry {
            term: self.term,
            command,
        });
        let index = self.last_log_index();
        self.advance_commit();
        Ok(index)
    }

    /// Handles an incoming message from `from`. Returns replies/side
    /// messages to send.
    pub fn handle(&mut self, from: PeerId, message: Message<C>, now: SimTime) -> Vec<Envelope<C>> {
        // A PreVote carries a *would-be* term; it must never force a step
        // down — that is the entire point of the pre-vote phase.
        if !matches!(message, Message::PreVote { .. }) && message.term() > self.term {
            self.step_down(message.term());
        }
        match message {
            Message::RequestVote {
                term,
                candidate,
                last_log_index,
                last_log_term,
            } => {
                let up_to_date = last_log_term > self.last_log_term()
                    || (last_log_term == self.last_log_term()
                        && last_log_index >= self.last_log_index());
                let can_vote = match self.voted_for {
                    None => true,
                    Some(v) => v == candidate,
                };
                let grant =
                    term == self.term && self.role == Role::Follower && up_to_date && can_vote;
                if grant {
                    self.voted_for = Some(candidate);
                    self.reset_election_deadline(now);
                }
                vec![Envelope {
                    to: from,
                    message: Message::RequestVoteResponse {
                        term: self.term,
                        granted: grant,
                    },
                }]
            }
            Message::PreVote {
                term,
                candidate,
                last_log_index,
                last_log_term,
            } => {
                let _ = candidate;
                let up_to_date = last_log_term > self.last_log_term()
                    || (last_log_term == self.last_log_term()
                        && last_log_index >= self.last_log_index());
                // Grant only when we ourselves have not heard from a live
                // leader within the minimum election timeout: a follower
                // still receiving heartbeats refuses, which is what
                // protects a healthy leader from flapping nodes.
                let no_live_leader =
                    now >= self.last_leader_contact + self.config.election_timeout_min;
                let grant = term > self.term && up_to_date && no_live_leader;
                vec![Envelope {
                    to: from,
                    message: Message::PreVoteResponse {
                        term: self.term,
                        granted: grant,
                    },
                }]
            }
            Message::PreVoteResponse { term: _, granted } => {
                let round_live = self.prevote_term == self.term + 1;
                let no_live_leader =
                    now >= self.last_leader_contact + self.config.election_timeout_min;
                if self.role == Role::Follower && granted && round_live && no_live_leader {
                    self.prevotes_received.insert(from);
                    if self.prevotes_received.len() >= self.majority() {
                        return self.start_election(now);
                    }
                }
                Vec::new()
            }
            Message::RequestVoteResponse { term, granted } => {
                if self.role == Role::Candidate && term == self.term && granted {
                    self.votes_received.insert(from);
                    if self.votes_received.len() >= self.majority() {
                        return self.become_leader(now);
                    }
                }
                Vec::new()
            }
            Message::AppendEntries {
                term,
                leader,
                prev_log_index,
                prev_log_term,
                entries,
                leader_commit,
            } => {
                if term < self.term {
                    return vec![Envelope {
                        to: from,
                        message: Message::AppendEntriesResponse {
                            term: self.term,
                            success: false,
                            match_index: 0,
                        },
                    }];
                }
                // Valid leader for our term.
                self.role = Role::Follower;
                self.leader_hint = Some(leader);
                self.reset_election_deadline(now);
                self.last_leader_contact = now;
                self.prevote_term = 0;

                // Entries at or below our snapshot boundary are already
                // committed here; skip them and re-anchor at the boundary.
                let (prev_log_index, prev_log_term, entries) = if prev_log_index < self.log_start {
                    let skip = (self.log_start - prev_log_index) as usize;
                    if entries.len() <= skip {
                        return vec![Envelope {
                            to: from,
                            message: Message::AppendEntriesResponse {
                                term: self.term,
                                success: true,
                                match_index: self
                                    .log_start
                                    .max(prev_log_index + entries.len() as u64),
                            },
                        }];
                    }
                    (self.log_start, self.snapshot_term, entries[skip..].to_vec())
                } else {
                    (prev_log_index, prev_log_term, entries)
                };
                match self.term_at(prev_log_index) {
                    Some(t) if t == prev_log_term => {
                        // Append, resolving conflicts.
                        let mut index = prev_log_index;
                        for entry in entries {
                            index += 1;
                            match self.term_at(index) {
                                Some(t) if t == entry.term => {} // already present
                                _ => {
                                    self.log.truncate((index - self.log_start - 1) as usize);
                                    self.log.push(entry);
                                }
                            }
                        }
                        if leader_commit > self.commit_index {
                            self.commit_index = leader_commit.min(index);
                        }
                        vec![Envelope {
                            to: from,
                            message: Message::AppendEntriesResponse {
                                term: self.term,
                                success: true,
                                match_index: index,
                            },
                        }]
                    }
                    _ => {
                        // Log mismatch: hint back-off to our log end.
                        let hint = self.last_log_index().min(prev_log_index.saturating_sub(1));
                        vec![Envelope {
                            to: from,
                            message: Message::AppendEntriesResponse {
                                term: self.term,
                                success: false,
                                match_index: hint,
                            },
                        }]
                    }
                }
            }
            Message::InstallSnapshot {
                term,
                leader,
                last_included_index,
                last_included_term,
                commands,
            } => {
                if term < self.term {
                    return vec![Envelope {
                        to: from,
                        message: Message::InstallSnapshotResponse {
                            term: self.term,
                            match_index: 0,
                        },
                    }];
                }
                self.role = Role::Follower;
                self.leader_hint = Some(leader);
                self.reset_election_deadline(now);
                self.last_leader_contact = now;
                self.prevote_term = 0;
                if last_included_index > self.commit_index {
                    // Retain any log suffix that extends past the snapshot
                    // and agrees with it; otherwise discard the whole log.
                    match self.term_at(last_included_index) {
                        Some(t) if t == last_included_term => {
                            let cut = (last_included_index - self.log_start) as usize;
                            self.log.drain(..cut.min(self.log.len()));
                        }
                        _ => self.log.clear(),
                    }
                    self.snapshot = commands;
                    self.log_start = last_included_index;
                    self.snapshot_term = last_included_term;
                    self.commit_index = last_included_index;
                }
                vec![Envelope {
                    to: from,
                    message: Message::InstallSnapshotResponse {
                        term: self.term,
                        match_index: self.log_start.max(self.commit_index),
                    },
                }]
            }
            Message::InstallSnapshotResponse { term, match_index } => {
                if self.role != Role::Leader || term != self.term || match_index == 0 {
                    return Vec::new();
                }
                let m = self.match_index.entry(from).or_insert(0);
                *m = (*m).max(match_index);
                self.next_index.insert(from, match_index + 1);
                self.advance_commit();
                if match_index < self.last_log_index() {
                    return vec![self.append_for(from)];
                }
                Vec::new()
            }
            Message::AppendEntriesResponse {
                term,
                success,
                match_index,
            } => {
                if self.role != Role::Leader || term != self.term {
                    return Vec::new();
                }
                if success {
                    let m = self.match_index.entry(from).or_insert(0);
                    *m = (*m).max(match_index);
                    self.next_index.insert(from, match_index + 1);
                    self.advance_commit();
                    // Ship any remaining entries immediately.
                    if match_index < self.last_log_index() {
                        return vec![self.append_for(from)];
                    }
                    Vec::new()
                } else {
                    let next = self.next_index.entry(from).or_insert(1);
                    *next = (match_index + 1).min((*next).saturating_sub(1)).max(1);
                    vec![self.append_for(from)]
                }
            }
        }
    }

    /// Advances `commit_index` to the highest index replicated on a
    /// majority whose entry is from the current term (Raft §5.4.2).
    fn advance_commit(&mut self) {
        if self.role != Role::Leader {
            return;
        }
        let last = self.last_log_index();
        for n in ((self.commit_index + 1)..=last).rev() {
            if self.term_at(n) != Some(self.term) {
                continue;
            }
            let replicas = 1 + self.match_index.values().filter(|&&m| m >= n).count();
            if replicas >= self.majority() {
                self.commit_index = n;
                break;
            }
        }
    }

    /// Drains entries committed since the previous call, in log order.
    pub fn take_committed(&mut self) -> Vec<(LogIndex, C)> {
        let mut out = Vec::new();
        while self.drained_index < self.commit_index {
            self.drained_index += 1;
            let command = if self.drained_index <= self.log_start {
                self.snapshot[self.drained_index as usize - 1].clone()
            } else {
                self.log[(self.drained_index - self.log_start - 1) as usize]
                    .command
                    .clone()
            };
            out.push((self.drained_index, command));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three() -> Vec<PeerId> {
        vec![PeerId(0), PeerId(1), PeerId(2)]
    }

    fn node(id: usize) -> RaftNode<u32> {
        RaftNode::new(PeerId(id), three(), RaftConfig::default(), id as u64)
    }

    fn expire_election(n: &mut RaftNode<u32>) -> Vec<Envelope<u32>> {
        n.tick(SimTime::from_secs(100))
    }

    #[test]
    fn starts_as_follower() {
        let n = node(0);
        assert_eq!(n.role(), Role::Follower);
        assert_eq!(n.term(), 0);
        assert_eq!(n.commit_index(), 0);
    }

    #[test]
    fn election_timeout_starts_campaign() {
        let mut n = node(0);
        let msgs = expire_election(&mut n);
        assert_eq!(n.role(), Role::Candidate);
        assert_eq!(n.term(), 1);
        assert_eq!(msgs.len(), 2);
        for m in &msgs {
            assert!(matches!(m.message, Message::RequestVote { term: 1, .. }));
        }
    }

    #[test]
    fn no_campaign_before_timeout() {
        let mut n = node(0);
        assert!(n.tick(SimTime::from_millis(1)).is_empty());
        assert_eq!(n.role(), Role::Follower);
    }

    #[test]
    fn majority_votes_elect_leader() {
        let mut n = node(0);
        expire_election(&mut n);
        let out = n.handle(
            PeerId(1),
            Message::RequestVoteResponse {
                term: 1,
                granted: true,
            },
            SimTime::from_secs(100),
        );
        assert_eq!(n.role(), Role::Leader);
        // Immediately heartbeats both peers.
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|e| e.message.is_heartbeat()));
    }

    #[test]
    fn rejected_votes_do_not_elect() {
        let mut n = node(0);
        expire_election(&mut n);
        n.handle(
            PeerId(1),
            Message::RequestVoteResponse {
                term: 1,
                granted: false,
            },
            SimTime::from_secs(100),
        );
        assert_eq!(n.role(), Role::Candidate);
    }

    #[test]
    fn votes_once_per_term() {
        let mut n = node(2);
        let now = SimTime::from_millis(1);
        let vote = |c: usize| Message::RequestVote {
            term: 1,
            candidate: PeerId(c),
            last_log_index: 0,
            last_log_term: 0,
        };
        let r1 = n.handle(PeerId(0), vote(0), now);
        assert!(matches!(
            r1[0].message,
            Message::RequestVoteResponse { granted: true, .. }
        ));
        let r2 = n.handle(PeerId(1), vote(1), now);
        assert!(matches!(
            r2[0].message,
            Message::RequestVoteResponse { granted: false, .. }
        ));
        // Same candidate asking again is re-granted (idempotent).
        let r3 = n.handle(PeerId(0), vote(0), now);
        assert!(matches!(
            r3[0].message,
            Message::RequestVoteResponse { granted: true, .. }
        ));
    }

    #[test]
    fn stale_log_candidate_rejected() {
        let mut voter = node(1);
        // Give the voter a log entry at term 1.
        voter.handle(
            PeerId(0),
            Message::AppendEntries {
                term: 1,
                leader: PeerId(0),
                prev_log_index: 0,
                prev_log_term: 0,
                entries: vec![LogEntry {
                    term: 1,
                    command: 5,
                }],
                leader_commit: 0,
            },
            SimTime::from_millis(1),
        );
        let reply = voter.handle(
            PeerId(2),
            Message::RequestVote {
                term: 2,
                candidate: PeerId(2),
                last_log_index: 0,
                last_log_term: 0,
            },
            SimTime::from_millis(2),
        );
        assert!(matches!(
            reply[0].message,
            Message::RequestVoteResponse { granted: false, .. }
        ));
    }

    #[test]
    fn higher_term_steps_leader_down() {
        let mut n = node(0);
        expire_election(&mut n);
        n.handle(
            PeerId(1),
            Message::RequestVoteResponse {
                term: 1,
                granted: true,
            },
            SimTime::from_secs(100),
        );
        assert_eq!(n.role(), Role::Leader);
        n.handle(
            PeerId(2),
            Message::AppendEntries {
                term: 5,
                leader: PeerId(2),
                prev_log_index: 0,
                prev_log_term: 0,
                entries: vec![],
                leader_commit: 0,
            },
            SimTime::from_secs(101),
        );
        assert_eq!(n.role(), Role::Follower);
        assert_eq!(n.term(), 5);
        assert_eq!(n.leader_hint(), Some(PeerId(2)));
    }

    #[test]
    fn propose_requires_leadership() {
        let mut n = node(0);
        let err = n.propose(1).unwrap_err();
        assert_eq!(err.leader_hint, None);
    }

    #[test]
    fn follower_appends_and_commits() {
        let mut f = node(1);
        let out = f.handle(
            PeerId(0),
            Message::AppendEntries {
                term: 1,
                leader: PeerId(0),
                prev_log_index: 0,
                prev_log_term: 0,
                entries: vec![
                    LogEntry {
                        term: 1,
                        command: 10,
                    },
                    LogEntry {
                        term: 1,
                        command: 20,
                    },
                ],
                leader_commit: 1,
            },
            SimTime::from_millis(5),
        );
        assert!(matches!(
            out[0].message,
            Message::AppendEntriesResponse {
                success: true,
                match_index: 2,
                ..
            }
        ));
        assert_eq!(f.commit_index(), 1);
        assert_eq!(f.take_committed(), vec![(1, 10)]);
        assert!(f.take_committed().is_empty());
    }

    #[test]
    fn follower_rejects_gap() {
        let mut f = node(1);
        let out = f.handle(
            PeerId(0),
            Message::AppendEntries {
                term: 1,
                leader: PeerId(0),
                prev_log_index: 5,
                prev_log_term: 1,
                entries: vec![LogEntry {
                    term: 1,
                    command: 9,
                }],
                leader_commit: 0,
            },
            SimTime::from_millis(5),
        );
        assert!(matches!(
            out[0].message,
            Message::AppendEntriesResponse { success: false, .. }
        ));
        assert_eq!(f.log_len(), 0);
    }

    #[test]
    fn conflicting_entries_truncated() {
        let mut f = node(1);
        // Term-1 leader appends two entries.
        f.handle(
            PeerId(0),
            Message::AppendEntries {
                term: 1,
                leader: PeerId(0),
                prev_log_index: 0,
                prev_log_term: 0,
                entries: vec![
                    LogEntry {
                        term: 1,
                        command: 1,
                    },
                    LogEntry {
                        term: 1,
                        command: 2,
                    },
                ],
                leader_commit: 0,
            },
            SimTime::from_millis(1),
        );
        // Term-2 leader overwrites index 2.
        f.handle(
            PeerId(2),
            Message::AppendEntries {
                term: 2,
                leader: PeerId(2),
                prev_log_index: 1,
                prev_log_term: 1,
                entries: vec![LogEntry {
                    term: 2,
                    command: 99,
                }],
                leader_commit: 0,
            },
            SimTime::from_millis(2),
        );
        assert_eq!(f.log_len(), 2);
        assert_eq!(f.entry(2).unwrap().command, 99);
        assert_eq!(f.entry(2).unwrap().term, 2);
    }

    #[test]
    fn leader_commits_after_majority_ack() {
        let mut l = node(0);
        expire_election(&mut l);
        l.handle(
            PeerId(1),
            Message::RequestVoteResponse {
                term: 1,
                granted: true,
            },
            SimTime::from_secs(100),
        );
        let idx = l.propose(42).unwrap();
        assert_eq!(idx, 1);
        assert_eq!(l.commit_index(), 0);
        l.handle(
            PeerId(1),
            Message::AppendEntriesResponse {
                term: 1,
                success: true,
                match_index: 1,
            },
            SimTime::from_secs(100),
        );
        assert_eq!(l.commit_index(), 1);
        assert_eq!(l.take_committed(), vec![(1, 42)]);
    }

    #[test]
    fn failed_append_backs_off_and_retries() {
        let mut l = node(0);
        expire_election(&mut l);
        l.handle(
            PeerId(1),
            Message::RequestVoteResponse {
                term: 1,
                granted: true,
            },
            SimTime::from_secs(100),
        );
        l.propose(1).unwrap();
        l.propose(2).unwrap();
        let retry = l.handle(
            PeerId(2),
            Message::AppendEntriesResponse {
                term: 1,
                success: false,
                match_index: 0,
            },
            SimTime::from_secs(100),
        );
        assert_eq!(retry.len(), 1);
        match &retry[0].message {
            Message::AppendEntries {
                prev_log_index,
                entries,
                ..
            } => {
                assert_eq!(*prev_log_index, 0);
                assert_eq!(entries.len(), 2);
            }
            other => panic!("expected AppendEntries, got {other:?}"),
        }
    }

    #[test]
    fn single_node_cluster_self_elects_and_commits() {
        let mut n: RaftNode<u32> =
            RaftNode::new(PeerId(0), vec![PeerId(0)], RaftConfig::default(), 7);
        n.tick(SimTime::from_secs(10));
        assert_eq!(n.role(), Role::Leader);
        n.propose(7).unwrap();
        assert_eq!(n.commit_index(), 1);
    }

    #[test]
    fn leader_heartbeats_periodically() {
        let mut n = node(0);
        expire_election(&mut n);
        n.handle(
            PeerId(1),
            Message::RequestVoteResponse {
                term: 1,
                granted: true,
            },
            SimTime::from_secs(100),
        );
        // Heartbeat due after the interval.
        let hb = n.tick(SimTime::from_secs(101));
        assert_eq!(hb.len(), 2);
        assert!(hb.iter().all(|e| e.message.is_heartbeat()));
        // Not due again immediately.
        assert!(n.tick(SimTime::from_secs(101)).is_empty());
    }

    #[test]
    fn compaction_preserves_logical_log() {
        let mut n: RaftNode<u32> =
            RaftNode::new(PeerId(0), vec![PeerId(0)], RaftConfig::default(), 1);
        n.tick(SimTime::from_secs(10)); // self-elect
        for cmd in 0..10 {
            n.propose(cmd).unwrap();
        }
        assert_eq!(n.commit_index(), 10);
        let drained: Vec<u32> = n.take_committed().into_iter().map(|(_, c)| c).collect();
        assert_eq!(drained, (0..10).collect::<Vec<_>>());
        assert_eq!(n.compact_to(6), 6);
        assert_eq!(n.log_start(), 6);
        assert_eq!(n.retained_log_len(), 4);
        assert_eq!(n.log_len(), 10);
        // Compacted entries are no longer retrievable; retained ones are.
        assert!(n.entry(6).is_none());
        assert_eq!(n.entry(7).unwrap().command, 6);
        // Further proposals still work.
        n.propose(99).unwrap();
        assert_eq!(n.log_len(), 11);
        assert_eq!(n.take_committed().last().unwrap().1, 99);
    }

    #[test]
    fn compaction_clamped_to_commit() {
        let mut n: RaftNode<u32> = RaftNode::new(PeerId(0), three(), RaftConfig::default(), 1);
        // Follower with 2 appended but only 1 committed.
        n.handle(
            PeerId(0),
            Message::AppendEntries {
                term: 1,
                leader: PeerId(0),
                prev_log_index: 0,
                prev_log_term: 0,
                entries: vec![
                    LogEntry {
                        term: 1,
                        command: 1,
                    },
                    LogEntry {
                        term: 1,
                        command: 2,
                    },
                ],
                leader_commit: 1,
            },
            SimTime::from_millis(1),
        );
        assert_eq!(n.compact_to(10), 1, "cannot compact past commit");
        assert_eq!(n.log_start(), 1);
    }

    #[test]
    fn leader_ships_snapshot_to_lagging_follower() {
        let mut leader: RaftNode<u32> = RaftNode::new(PeerId(0), three(), RaftConfig::default(), 1);
        expire_election(&mut leader);
        leader.handle(
            PeerId(1),
            Message::RequestVoteResponse {
                term: 1,
                granted: true,
            },
            SimTime::from_secs(100),
        );
        for cmd in 0..8 {
            leader.propose(cmd).unwrap();
        }
        // Peer 1 replicates everything; peer 2 is partitioned away.
        leader.handle(
            PeerId(1),
            Message::AppendEntriesResponse {
                term: 1,
                success: true,
                match_index: 8,
            },
            SimTime::from_secs(100),
        );
        assert_eq!(leader.commit_index(), 8);
        leader.compact_to(8);
        assert_eq!(leader.retained_log_len(), 0);

        // Peer 2 reports a mismatch far behind: leader must snapshot.
        let out = leader.handle(
            PeerId(2),
            Message::AppendEntriesResponse {
                term: 1,
                success: false,
                match_index: 0,
            },
            SimTime::from_secs(101),
        );
        assert_eq!(out.len(), 1);
        let snap = match &out[0].message {
            Message::InstallSnapshot {
                last_included_index,
                commands,
                ..
            } => {
                assert_eq!(*last_included_index, 8);
                assert_eq!(commands.len(), 8);
                out[0].message.clone()
            }
            other => panic!("expected InstallSnapshot, got {other:?}"),
        };

        // The lagging follower installs it and converges.
        let mut follower: RaftNode<u32> =
            RaftNode::new(PeerId(2), three(), RaftConfig::default(), 2);
        let reply = follower.handle(PeerId(0), snap, SimTime::from_secs(101));
        assert!(matches!(
            reply[0].message,
            Message::InstallSnapshotResponse { match_index: 8, .. }
        ));
        assert_eq!(follower.commit_index(), 8);
        let drained: Vec<u32> = follower
            .take_committed()
            .into_iter()
            .map(|(_, c)| c)
            .collect();
        assert_eq!(drained, (0..8).collect::<Vec<_>>());

        // Leader processes the ack and resumes normal replication.
        let more = leader.handle(PeerId(2), reply[0].message.clone(), SimTime::from_secs(102));
        assert!(more.is_empty(), "peer 2 is caught up: {more:?}");
    }

    #[test]
    fn stale_snapshot_is_ignored() {
        let mut n: RaftNode<u32> = RaftNode::new(PeerId(0), three(), RaftConfig::default(), 1);
        // Commit 3 entries first.
        n.handle(
            PeerId(1),
            Message::AppendEntries {
                term: 1,
                leader: PeerId(1),
                prev_log_index: 0,
                prev_log_term: 0,
                entries: (0..3)
                    .map(|c| LogEntry {
                        term: 1,
                        command: c,
                    })
                    .collect(),
                leader_commit: 3,
            },
            SimTime::from_millis(1),
        );
        let before = n.take_committed();
        assert_eq!(before.len(), 3);
        // A snapshot covering less than our commit changes nothing.
        n.handle(
            PeerId(1),
            Message::InstallSnapshot {
                term: 1,
                leader: PeerId(1),
                last_included_index: 2,
                last_included_term: 1,
                commands: vec![0, 1],
            },
            SimTime::from_millis(2),
        );
        assert_eq!(n.commit_index(), 3);
        assert_eq!(n.log_len(), 3);
    }

    fn prevote_config() -> RaftConfig {
        RaftConfig {
            pre_vote: true,
            ..RaftConfig::default()
        }
    }

    #[test]
    fn prevote_timeout_probes_without_term_bump() {
        let mut n: RaftNode<u32> = RaftNode::new(PeerId(0), three(), prevote_config(), 1);
        let out = n.tick(SimTime::from_secs(100));
        // Still a term-0 follower; only probes were sent.
        assert_eq!(n.role(), Role::Follower);
        assert_eq!(n.term(), 0);
        assert_eq!(out.len(), 2);
        for env in &out {
            assert!(matches!(env.message, Message::PreVote { term: 1, .. }));
        }
    }

    #[test]
    fn prevote_majority_starts_real_election() {
        let mut n: RaftNode<u32> = RaftNode::new(PeerId(0), three(), prevote_config(), 1);
        n.tick(SimTime::from_secs(100));
        let out = n.handle(
            PeerId(1),
            Message::PreVoteResponse {
                term: 0,
                granted: true,
            },
            SimTime::from_secs(100),
        );
        // Majority of pre-votes (self + peer 1): the real election starts.
        assert_eq!(n.role(), Role::Candidate);
        assert_eq!(n.term(), 1);
        assert!(out
            .iter()
            .all(|e| matches!(e.message, Message::RequestVote { term: 1, .. })));
    }

    #[test]
    fn follower_with_live_leader_refuses_prevote() {
        let mut follower: RaftNode<u32> = RaftNode::new(PeerId(1), three(), prevote_config(), 2);
        // Heartbeat from a live leader at t=10s.
        follower.handle(
            PeerId(0),
            Message::AppendEntries {
                term: 1,
                leader: PeerId(0),
                prev_log_index: 0,
                prev_log_term: 0,
                entries: vec![],
                leader_commit: 0,
            },
            SimTime::from_secs(10),
        );
        // A flapping node probes 50 ms later: refused.
        let reply = follower.handle(
            PeerId(2),
            Message::PreVote {
                term: 2,
                candidate: PeerId(2),
                last_log_index: 0,
                last_log_term: 0,
            },
            SimTime::from_secs(10) + SimTime::from_millis(50),
        );
        assert!(matches!(
            reply[0].message,
            Message::PreVoteResponse { granted: false, .. }
        ));
        // Crucially the follower's term did NOT move (no disruption).
        assert_eq!(follower.term(), 1);
        // Once the leader has been silent past the timeout, it grants.
        let reply = follower.handle(
            PeerId(2),
            Message::PreVote {
                term: 2,
                candidate: PeerId(2),
                last_log_index: 0,
                last_log_term: 0,
            },
            SimTime::from_secs(20),
        );
        assert!(matches!(
            reply[0].message,
            Message::PreVoteResponse { granted: true, .. }
        ));
    }

    #[test]
    fn prevote_rejects_stale_log() {
        let mut voter: RaftNode<u32> = RaftNode::new(PeerId(1), three(), prevote_config(), 2);
        voter.handle(
            PeerId(0),
            Message::AppendEntries {
                term: 1,
                leader: PeerId(0),
                prev_log_index: 0,
                prev_log_term: 0,
                entries: vec![LogEntry {
                    term: 1,
                    command: 7,
                }],
                leader_commit: 1,
            },
            SimTime::from_millis(1),
        );
        let reply = voter.handle(
            PeerId(2),
            Message::PreVote {
                term: 2,
                candidate: PeerId(2),
                last_log_index: 0,
                last_log_term: 0,
            },
            SimTime::from_secs(100),
        );
        assert!(matches!(
            reply[0].message,
            Message::PreVoteResponse { granted: false, .. }
        ));
    }

    #[test]
    fn prevote_single_node_self_elects() {
        let mut n: RaftNode<u32> = RaftNode::new(PeerId(0), vec![PeerId(0)], prevote_config(), 3);
        n.tick(SimTime::from_secs(10));
        assert_eq!(n.role(), Role::Leader);
    }

    #[test]
    #[should_panic(expected = "cluster must contain")]
    fn cluster_must_contain_self() {
        let _: RaftNode<u32> = RaftNode::new(PeerId(9), three(), RaftConfig::default(), 0);
    }
}
