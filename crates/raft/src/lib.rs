//! Raft consensus for general information agreement on edge networks.
//!
//! The paper's prototype implements "raft algorithm in our blockchain
//! system" for general information consensus (membership, configuration),
//! and its conclusion highlights raft's heartbeat overhead as a cost worth
//! measuring. This crate is a from-scratch raft (Ongaro & Ousterhout 2014):
//!
//! * [`RaftNode`] — a sans-I/O replica state machine (elections, log
//!   replication, commit rules, log compaction/snapshots, optional
//!   Raft §9.6 pre-vote for flap-prone edge networks), driven by
//!   `tick`/`handle`.
//! * [`Cluster`] — a deterministic in-memory harness with message delays,
//!   loss, and partitions, which checks election safety and log matching
//!   after every event.
//! * [`MessageCounts`] — traffic breakdown used by the overhead benches.
//!
//! # Examples
//!
//! ```
//! use edgechain_raft::{Cluster, ClusterConfig};
//!
//! let mut cluster: Cluster<&'static str> =
//!     Cluster::new(5, ClusterConfig::default(), 7);
//! cluster.run_until_leader(30_000)?;
//! cluster.propose("node-12 joined")?;
//! cluster.run_millis(5_000);
//! assert!(cluster.all_committed(&["node-12 joined"]));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod message;
pub mod node;

pub use cluster::{Cluster, ClusterConfig, MessageCounts, NoLeader, SafetyViolation};
pub use message::{Envelope, LogEntry, LogIndex, Message, PeerId, Term};
pub use node::{NotLeader, RaftConfig, RaftNode, Role};
