//! Deterministic in-memory raft cluster for testing and experiments.
//!
//! Wires several [`RaftNode`]s through an [`EventQueue`] with randomized
//! (but seeded) message delays, optional message loss, and link-level
//! partitions. After every delivered event the harness checks the two core
//! raft safety properties:
//!
//! * **Election safety** — at most one leader per term, tracked across the
//!   whole run.
//! * **Log matching** — any two logs agree on every index up to the lower
//!   of their commit indices.
//!
//! # Examples
//!
//! ```
//! use edgechain_raft::{Cluster, ClusterConfig};
//!
//! let mut cluster: Cluster<u64> = Cluster::new(3, ClusterConfig::default(), 42);
//! cluster.run_until_leader(30_000).expect("a leader emerges");
//! cluster.propose(7).unwrap();
//! cluster.run_millis(5_000);
//! assert!(cluster.all_committed(&[7]));
//! ```

use crate::message::{Envelope, Message, PeerId};
use crate::node::{NotLeader, RaftConfig, RaftNode, Role};
use edgechain_sim::{EventQueue, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::fmt;

/// Harness parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Raft timing passed to every node.
    pub raft: RaftConfig,
    /// Minimum one-way message delay.
    pub delay_min: SimTime,
    /// Maximum one-way message delay.
    pub delay_max: SimTime,
    /// Probability a message is silently dropped.
    pub drop_rate: f64,
    /// How often node timers are polled.
    pub tick_interval: SimTime,
    /// Compact every node's log down to its commit index whenever the
    /// retained tail exceeds this many entries (`None` disables).
    pub compact_above: Option<usize>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            raft: RaftConfig::default(),
            delay_min: SimTime::from_millis(5),
            delay_max: SimTime::from_millis(30),
            drop_rate: 0.0,
            tick_interval: SimTime::from_millis(10),
            compact_above: None,
        }
    }
}

enum Event<C> {
    Deliver { from: PeerId, env: Envelope<C> },
    Tick,
}

/// Message-type counters for overhead analysis (the paper notes raft
/// "transmits a large number of heartbeat messages").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MessageCounts {
    /// Heartbeats (empty AppendEntries).
    pub heartbeats: u64,
    /// AppendEntries carrying at least one entry.
    pub appends: u64,
    /// RequestVote messages.
    pub votes: u64,
    /// InstallSnapshot messages (log compaction catch-up).
    pub snapshots: u64,
    /// All responses.
    pub responses: u64,
    /// Messages dropped by the lossy network.
    pub dropped: u64,
}

impl MessageCounts {
    /// Total messages offered to the network (delivered + dropped).
    pub fn total(&self) -> u64 {
        self.heartbeats + self.appends + self.votes + self.snapshots + self.responses
    }
}

/// Error from a failed safety check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SafetyViolation {
    /// Two leaders observed in one term.
    TwoLeaders {
        /// The term in question.
        term: u64,
        /// First observed leader.
        first: PeerId,
        /// Second observed leader.
        second: PeerId,
    },
    /// Committed logs diverge.
    LogMismatch {
        /// First node.
        a: PeerId,
        /// Second node.
        b: PeerId,
        /// First index at which they disagree.
        index: u64,
    },
}

impl fmt::Display for SafetyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SafetyViolation::TwoLeaders {
                term,
                first,
                second,
            } => {
                write!(f, "two leaders in term {term}: {first} and {second}")
            }
            SafetyViolation::LogMismatch { a, b, index } => {
                write!(f, "committed logs of {a} and {b} diverge at index {index}")
            }
        }
    }
}

impl std::error::Error for SafetyViolation {}

/// A simulated raft cluster.
pub struct Cluster<C> {
    nodes: Vec<RaftNode<C>>,
    queue: EventQueue<Event<C>>,
    rng: StdRng,
    config: ClusterConfig,
    /// `link_up[a][b]` — messages from a to b are delivered.
    link_up: Vec<Vec<bool>>,
    leaders_by_term: HashMap<u64, PeerId>,
    counts: MessageCounts,
    committed: Vec<Vec<C>>,
}

impl<C: Clone + PartialEq + fmt::Debug> Cluster<C> {
    /// Creates a cluster of `n` fresh followers.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, config: ClusterConfig, seed: u64) -> Self {
        assert!(n > 0, "cluster needs at least one node");
        let ids: Vec<PeerId> = (0..n).map(PeerId).collect();
        let nodes = ids
            .iter()
            .map(|&id| RaftNode::new(id, ids.clone(), config.raft, seed.wrapping_add(id.0 as u64)))
            .collect();
        let mut queue = EventQueue::new();
        queue.schedule(SimTime::ZERO, Event::Tick);
        Cluster {
            nodes,
            queue,
            rng: StdRng::seed_from_u64(seed),
            config,
            link_up: vec![vec![true; n]; n],
            leaders_by_term: HashMap::new(),
            counts: MessageCounts::default(),
            committed: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the cluster is empty (never true).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Message-type counters so far.
    pub fn message_counts(&self) -> MessageCounts {
        self.counts
    }

    /// Immutable access to a node.
    pub fn node(&self, id: PeerId) -> &RaftNode<C> {
        &self.nodes[id.0]
    }

    /// The unique live leader with the highest term, if any.
    pub fn leader(&self) -> Option<PeerId> {
        self.nodes
            .iter()
            .filter(|n| n.role() == Role::Leader)
            .max_by_key(|n| n.term())
            .map(|n| n.id())
    }

    /// Commands each node has applied (committed), in order.
    pub fn committed_log(&self, id: PeerId) -> &[C] {
        &self.committed[id.0]
    }

    /// Whether every node has committed exactly the prefix `expected`.
    pub fn all_committed(&self, expected: &[C]) -> bool {
        self.committed.iter().all(|log| log.as_slice() == expected)
    }

    /// Proposes a command at the current leader.
    ///
    /// # Errors
    ///
    /// Returns [`NotLeader`] when no leader is currently elected.
    pub fn propose(&mut self, command: C) -> Result<(), NotLeader> {
        let leader = self.leader().ok_or(NotLeader { leader_hint: None })?;
        self.nodes[leader.0].propose(command)?;
        Ok(())
    }

    /// Severs links between `group` and the rest (and restores links inside
    /// each side).
    pub fn partition(&mut self, group: &[PeerId]) {
        let n = self.nodes.len();
        let in_group = |p: usize| group.iter().any(|g| g.0 == p);
        for a in 0..n {
            for b in 0..n {
                self.link_up[a][b] = in_group(a) == in_group(b);
            }
        }
    }

    /// Restores full connectivity.
    pub fn heal(&mut self) {
        for row in &mut self.link_up {
            row.iter_mut().for_each(|l| *l = true);
        }
    }

    /// Runs the cluster for `ms` simulated milliseconds.
    ///
    /// # Panics
    ///
    /// Panics on a safety violation (election safety / log matching); these
    /// indicate a bug in the raft implementation, not the caller.
    pub fn run_millis(&mut self, ms: u64) {
        let deadline = self.now() + SimTime::from_millis(ms);
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
    }

    /// Runs until a leader exists or `ms` elapse.
    ///
    /// # Errors
    ///
    /// Returns [`NoLeader`] if the deadline passes without an election.
    pub fn run_until_leader(&mut self, ms: u64) -> Result<PeerId, NoLeader> {
        let deadline = self.now() + SimTime::from_millis(ms);
        loop {
            if let Some(l) = self.leader() {
                return Ok(l);
            }
            match self.queue.peek_time() {
                Some(t) if t <= deadline => self.step(),
                _ => return Err(NoLeader { waited_ms: ms }),
            }
        }
    }

    fn step(&mut self) {
        let Some((now, event)) = self.queue.pop() else {
            return;
        };
        match event {
            Event::Tick => {
                for i in 0..self.nodes.len() {
                    let outs = self.nodes[i].tick(now);
                    self.dispatch(PeerId(i), outs, now);
                }
                self.queue
                    .schedule(now + self.config.tick_interval, Event::Tick);
            }
            Event::Deliver { from, env } => {
                let to = env.to;
                let outs = self.nodes[to.0].handle(from, env.message, now);
                self.dispatch(to, outs, now);
            }
        }
        self.drain_committed();
        if let Some(threshold) = self.config.compact_above {
            for node in &mut self.nodes {
                if node.retained_log_len() > threshold {
                    node.compact_to(node.commit_index());
                }
            }
        }
        if let Err(v) = self.check_safety() {
            panic!("raft safety violation: {v}");
        }
    }

    fn dispatch(&mut self, from: PeerId, envs: Vec<Envelope<C>>, now: SimTime) {
        for env in envs {
            match &env.message {
                Message::RequestVote { .. } | Message::PreVote { .. } => self.counts.votes += 1,
                Message::AppendEntries { entries, .. } => {
                    if entries.is_empty() {
                        self.counts.heartbeats += 1;
                    } else {
                        self.counts.appends += 1;
                    }
                }
                Message::InstallSnapshot { .. } => self.counts.snapshots += 1,
                _ => self.counts.responses += 1,
            }
            if !self.link_up[from.0][env.to.0] {
                self.counts.dropped += 1;
                continue;
            }
            if self.config.drop_rate > 0.0 && self.rng.gen::<f64>() < self.config.drop_rate {
                self.counts.dropped += 1;
                continue;
            }
            let span = self
                .config
                .delay_max
                .as_millis()
                .saturating_sub(self.config.delay_min.as_millis());
            let delay = self.config.delay_min
                + SimTime::from_millis(if span == 0 {
                    0
                } else {
                    self.rng.gen_range(0..=span)
                });
            self.queue
                .schedule(now + delay, Event::Deliver { from, env });
        }
    }

    fn drain_committed(&mut self) {
        for (i, node) in self.nodes.iter_mut().enumerate() {
            for (_, cmd) in node.take_committed() {
                self.committed[i].push(cmd);
            }
        }
    }

    fn check_safety(&mut self) -> Result<(), SafetyViolation> {
        // Election safety.
        for node in &self.nodes {
            if node.role() == Role::Leader {
                match self.leaders_by_term.get(&node.term()) {
                    Some(&existing) if existing != node.id() => {
                        return Err(SafetyViolation::TwoLeaders {
                            term: node.term(),
                            first: existing,
                            second: node.id(),
                        });
                    }
                    _ => {
                        self.leaders_by_term.insert(node.term(), node.id());
                    }
                }
            }
        }
        // Log matching over committed prefixes.
        for a in 0..self.nodes.len() {
            for b in a + 1..self.nodes.len() {
                let upto = self.committed[a].len().min(self.committed[b].len());
                for idx in 0..upto {
                    if self.committed[a][idx] != self.committed[b][idx] {
                        return Err(SafetyViolation::LogMismatch {
                            a: PeerId(a),
                            b: PeerId(b),
                            index: idx as u64 + 1,
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

impl<C> fmt::Debug for Cluster<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.nodes.len())
            .field("now", &self.queue.now())
            .finish()
    }
}

/// Error returned when no leader emerged within the deadline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoLeader {
    /// How long the harness waited.
    pub waited_ms: u64,
}

impl fmt::Display for NoLeader {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no leader elected within {} ms", self.waited_ms)
    }
}

impl std::error::Error for NoLeader {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elects_a_leader() {
        let mut c: Cluster<u32> = Cluster::new(3, ClusterConfig::default(), 1);
        let leader = c.run_until_leader(30_000).unwrap();
        assert_eq!(c.node(leader).role(), Role::Leader);
    }

    #[test]
    fn replicates_commands() {
        let mut c: Cluster<u32> = Cluster::new(5, ClusterConfig::default(), 2);
        c.run_until_leader(30_000).unwrap();
        for cmd in [1, 2, 3] {
            c.propose(cmd).unwrap();
        }
        c.run_millis(5_000);
        assert!(c.all_committed(&[1, 2, 3]));
    }

    #[test]
    fn survives_message_loss() {
        let cfg = ClusterConfig {
            drop_rate: 0.2,
            ..ClusterConfig::default()
        };
        let mut c: Cluster<u32> = Cluster::new(3, cfg, 3);
        c.run_until_leader(60_000).unwrap();
        c.propose(9).unwrap();
        c.run_millis(20_000);
        assert!(
            c.all_committed(&[9]),
            "committed: {:?}",
            c.committed_log(PeerId(0))
        );
    }

    #[test]
    fn minority_partition_cannot_commit() {
        let mut c: Cluster<u32> = Cluster::new(5, ClusterConfig::default(), 4);
        let leader = c.run_until_leader(30_000).unwrap();
        // Isolate the leader with one follower (minority).
        let follower = PeerId((leader.0 + 1) % 5);
        c.partition(&[leader, follower]);
        let _ = c.nodes[leader.0].propose(77);
        c.run_millis(5_000);
        // The isolated leader cannot commit.
        assert!(c.committed_log(leader).is_empty());
        // Majority side elects a new leader.
        let new_leader = c.leader().expect("majority elects");
        assert_ne!(new_leader, leader);
        // Heal; the stale entry must be overwritten, logs stay consistent.
        c.heal();
        c.propose(88).ok();
        c.run_millis(10_000);
        for i in 0..5 {
            assert!(!c.committed_log(PeerId(i)).contains(&77));
        }
    }

    #[test]
    fn recovers_after_full_partition_heal() {
        let mut c: Cluster<u32> = Cluster::new(3, ClusterConfig::default(), 5);
        c.run_until_leader(30_000).unwrap();
        c.propose(1).unwrap();
        c.run_millis(3_000);
        c.partition(&[PeerId(0)]);
        c.run_millis(5_000);
        c.heal();
        c.run_until_leader(30_000).unwrap();
        c.propose(2).unwrap();
        c.run_millis(10_000);
        assert!(c.all_committed(&[1, 2]));
    }

    #[test]
    fn lagging_follower_catches_up_via_snapshot() {
        let cfg = ClusterConfig {
            compact_above: Some(4),
            ..ClusterConfig::default()
        };
        let mut c: Cluster<u32> = Cluster::new(3, cfg, 8);
        let leader = c.run_until_leader(30_000).unwrap();
        // Partition one follower away, commit a long run of entries, and
        // let auto-compaction discard the follower's missing range.
        let lagging = PeerId((leader.0 + 1) % 3);
        c.partition(&[leader, PeerId((leader.0 + 2) % 3)]);
        for i in 0..20 {
            c.propose(i).unwrap();
            c.run_millis(500);
        }
        c.run_millis(5_000);
        assert!(c.node(leader).log_start() > 0, "leader never compacted");
        // Heal: the only way back for the lagging follower is a snapshot.
        c.heal();
        c.run_millis(30_000);
        let expected: Vec<u32> = (0..20).collect();
        assert!(
            c.all_committed(&expected),
            "lagging log: {:?}",
            c.committed_log(lagging)
        );
        assert!(c.message_counts().snapshots > 0, "no snapshot was shipped");
    }

    #[test]
    fn compaction_does_not_disturb_steady_state() {
        let cfg = ClusterConfig {
            compact_above: Some(2),
            ..ClusterConfig::default()
        };
        let mut c: Cluster<u32> = Cluster::new(5, cfg, 12);
        c.run_until_leader(30_000).unwrap();
        for i in 0..15 {
            c.propose(i).unwrap();
            c.run_millis(1_000);
        }
        c.run_millis(10_000);
        let expected: Vec<u32> = (0..15).collect();
        assert!(c.all_committed(&expected));
        // Every node's retained tail is small.
        for i in 0..5 {
            assert!(c.node(PeerId(i)).retained_log_len() <= 3);
        }
    }

    #[test]
    fn prevote_stops_flapping_node_from_deposing_leader() {
        // A node that keeps getting partitioned and healed. With classic
        // raft it times out, bumps its term, and forces the healthy leader
        // to step down on every heal; with pre-vote its probes are refused
        // and the leader's term never moves.
        let run = |pre_vote: bool| -> (u64, bool) {
            let cfg = ClusterConfig {
                raft: RaftConfig {
                    pre_vote,
                    ..RaftConfig::default()
                },
                ..ClusterConfig::default()
            };
            let mut c: Cluster<u32> = Cluster::new(5, cfg, 21);
            let first = c.run_until_leader(30_000).unwrap();
            c.propose(1).unwrap();
            c.run_millis(3_000);
            let term_before = c.node(first).term();
            let flapper = PeerId((first.0 + 1) % 5);
            for _ in 0..3 {
                // Partition the flapper alone, long enough to time out.
                let others: Vec<PeerId> = (0..5).map(PeerId).filter(|&p| p != flapper).collect();
                c.partition(&others);
                c.run_millis(5_000);
                c.heal();
                c.run_millis(5_000);
            }
            let leader_now = c.leader().expect("a leader exists after healing");
            let stable = leader_now == first && c.node(first).term() == term_before;
            (c.node(leader_now).term(), stable)
        };
        let (term_classic, _) = run(false);
        let (term_prevote, stable_prevote) = run(true);
        assert!(
            stable_prevote,
            "pre-vote leader was disturbed (term {term_prevote})"
        );
        assert!(
            term_prevote < term_classic,
            "pre-vote should hold terms down: {term_prevote} vs classic {term_classic}"
        );
    }

    #[test]
    fn prevote_cluster_still_elects_and_replicates() {
        let cfg = ClusterConfig {
            raft: RaftConfig {
                pre_vote: true,
                ..RaftConfig::default()
            },
            ..ClusterConfig::default()
        };
        let mut c: Cluster<u32> = Cluster::new(5, cfg, 22);
        c.run_until_leader(30_000).expect("pre-vote cluster elects");
        for i in 0..5 {
            c.propose(i).unwrap();
            c.run_millis(1_000);
        }
        c.run_millis(10_000);
        assert!(c.all_committed(&[0, 1, 2, 3, 4]));
    }

    #[test]
    fn prevote_cluster_recovers_from_leader_failure() {
        let cfg = ClusterConfig {
            raft: RaftConfig {
                pre_vote: true,
                ..RaftConfig::default()
            },
            ..ClusterConfig::default()
        };
        let mut c: Cluster<u32> = Cluster::new(5, cfg, 23);
        let first = c.run_until_leader(30_000).unwrap();
        // Kill the leader (isolate it alone): the rest must still elect a
        // successor even though everyone initially refuses pre-votes.
        c.partition(&[first]);
        c.run_millis(20_000);
        let second = c.leader().expect("majority elects despite pre-vote");
        assert_ne!(second, first);
        c.propose(9).unwrap();
        c.run_millis(10_000);
        for i in 0..5 {
            if PeerId(i) != first {
                assert_eq!(c.committed_log(PeerId(i)), &[9]);
            }
        }
    }

    #[test]
    fn heartbeats_dominate_traffic_when_idle() {
        let mut c: Cluster<u32> = Cluster::new(3, ClusterConfig::default(), 6);
        c.run_until_leader(30_000).unwrap();
        c.run_millis(60_000);
        let counts = c.message_counts();
        assert!(counts.heartbeats > counts.appends);
        assert!(counts.heartbeats > counts.votes);
        assert!(counts.total() > 0);
    }
}
