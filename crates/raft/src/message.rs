//! Raft wire messages.
//!
//! The message set follows the Raft paper (Ongaro & Ousterhout, USENIX ATC
//! 2014) exactly: `RequestVote`/`AppendEntries` RPCs and their responses.
//! Heartbeats are empty `AppendEntries`. [`Message::wire_size`] gives an
//! estimated serialized size so the edge simulation can charge raft's
//! (notoriously chatty) heartbeat traffic to the transmission-overhead
//! metrics, which the paper calls out as future work.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a raft peer (dense index into the cluster membership).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct PeerId(pub usize);

impl fmt::Display for PeerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A raft term number.
pub type Term = u64;

/// Index into the raft log (1-based; 0 means "before the first entry").
pub type LogIndex = u64;

/// One replicated log entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogEntry<C> {
    /// Term in which the entry was created by a leader.
    pub term: Term,
    /// The replicated command.
    pub command: C,
}

/// A raft RPC or response.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Message<C> {
    /// Candidate solicits a vote.
    RequestVote {
        /// Candidate's term.
        term: Term,
        /// The candidate asking for the vote.
        candidate: PeerId,
        /// Index of the candidate's last log entry.
        last_log_index: LogIndex,
        /// Term of the candidate's last log entry.
        last_log_term: Term,
    },
    /// Reply to [`Message::RequestVote`].
    RequestVoteResponse {
        /// Responder's current term.
        term: Term,
        /// Whether the vote was granted.
        granted: bool,
    },
    /// Pre-vote probe (Raft §9.6, optional via
    /// [`crate::RaftConfig::pre_vote`]): the candidate asks whether it
    /// *would* win an election at `term` **without** incrementing its own
    /// term, so a flapping node cannot inflate terms and depose a healthy
    /// leader — the common failure mode on mobile edge networks.
    PreVote {
        /// The would-be election term (candidate's current term + 1).
        term: Term,
        /// The probing candidate.
        candidate: PeerId,
        /// Index of the candidate's last log entry.
        last_log_index: LogIndex,
        /// Term of the candidate's last log entry.
        last_log_term: Term,
    },
    /// Reply to [`Message::PreVote`]. Carries the responder's *current*
    /// term (not the would-be term), so stale candidates still learn about
    /// newer terms.
    PreVoteResponse {
        /// Responder's current term.
        term: Term,
        /// Whether the responder would grant a real vote.
        granted: bool,
    },
    /// Leader replicates entries (empty = heartbeat).
    AppendEntries {
        /// Leader's term.
        term: Term,
        /// The leader's id.
        leader: PeerId,
        /// Index of the log entry immediately preceding `entries`.
        prev_log_index: LogIndex,
        /// Term of the entry at `prev_log_index`.
        prev_log_term: Term,
        /// Entries to append (empty for heartbeat).
        entries: Vec<LogEntry<C>>,
        /// Leader's commit index.
        leader_commit: LogIndex,
    },
    /// Reply to [`Message::AppendEntries`].
    AppendEntriesResponse {
        /// Responder's current term.
        term: Term,
        /// Whether the append matched and was applied.
        success: bool,
        /// On success, the index of the last entry now known replicated on
        /// the follower; on failure, a hint for `next_index` back-off.
        match_index: LogIndex,
    },
    /// Leader ships its compacted committed prefix to a follower whose
    /// `next_index` fell below the leader's first retained entry
    /// (Raft §7 log compaction).
    InstallSnapshot {
        /// Leader's term.
        term: Term,
        /// The leader's id.
        leader: PeerId,
        /// Index of the last entry covered by the snapshot.
        last_included_index: LogIndex,
        /// Term of that entry.
        last_included_term: Term,
        /// The committed commands `1..=last_included_index`, in order.
        commands: Vec<C>,
    },
    /// Reply to [`Message::InstallSnapshot`].
    InstallSnapshotResponse {
        /// Responder's current term.
        term: Term,
        /// The snapshot's `last_included_index`, acknowledging installation.
        match_index: LogIndex,
    },
}

impl<C> Message<C> {
    /// The message's term, used for the "higher term wins" rule.
    pub fn term(&self) -> Term {
        match self {
            Message::RequestVote { term, .. }
            | Message::RequestVoteResponse { term, .. }
            | Message::PreVote { term, .. }
            | Message::PreVoteResponse { term, .. }
            | Message::AppendEntries { term, .. }
            | Message::AppendEntriesResponse { term, .. }
            | Message::InstallSnapshot { term, .. }
            | Message::InstallSnapshotResponse { term, .. } => *term,
        }
    }

    /// Whether this is a heartbeat (empty `AppendEntries`).
    pub fn is_heartbeat(&self) -> bool {
        matches!(self, Message::AppendEntries { entries, .. } if entries.is_empty())
    }

    /// Estimated wire size in bytes, for traffic accounting.
    ///
    /// Headers are ~32 bytes; each entry is charged `16 + command_size`.
    pub fn wire_size(&self, command_size: impl Fn(&C) -> u64) -> u64 {
        match self {
            Message::RequestVote { .. } | Message::PreVote { .. } => 32,
            Message::RequestVoteResponse { .. } | Message::PreVoteResponse { .. } => 16,
            Message::AppendEntries { entries, .. } => {
                32 + entries
                    .iter()
                    .map(|e| 16 + command_size(&e.command))
                    .sum::<u64>()
            }
            Message::AppendEntriesResponse { .. } => 16,
            Message::InstallSnapshot { commands, .. } => {
                48 + commands.iter().map(&command_size).sum::<u64>()
            }
            Message::InstallSnapshotResponse { .. } => 16,
        }
    }
}

/// A message together with its destination.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Envelope<C> {
    /// Destination peer.
    pub to: PeerId,
    /// Payload.
    pub message: Message<C>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_detection() {
        let hb: Message<u32> = Message::AppendEntries {
            term: 1,
            leader: PeerId(0),
            prev_log_index: 0,
            prev_log_term: 0,
            entries: vec![],
            leader_commit: 0,
        };
        assert!(hb.is_heartbeat());
        let non_hb: Message<u32> = Message::AppendEntries {
            term: 1,
            leader: PeerId(0),
            prev_log_index: 0,
            prev_log_term: 0,
            entries: vec![LogEntry {
                term: 1,
                command: 9,
            }],
            leader_commit: 0,
        };
        assert!(!non_hb.is_heartbeat());
        let rv: Message<u32> = Message::RequestVote {
            term: 1,
            candidate: PeerId(1),
            last_log_index: 0,
            last_log_term: 0,
        };
        assert!(!rv.is_heartbeat());
    }

    #[test]
    fn term_extraction() {
        let m: Message<()> = Message::RequestVoteResponse {
            term: 7,
            granted: true,
        };
        assert_eq!(m.term(), 7);
    }

    #[test]
    fn wire_size_scales_with_entries() {
        let hb: Message<u32> = Message::AppendEntries {
            term: 1,
            leader: PeerId(0),
            prev_log_index: 0,
            prev_log_term: 0,
            entries: vec![],
            leader_commit: 0,
        };
        let loaded: Message<u32> = Message::AppendEntries {
            term: 1,
            leader: PeerId(0),
            prev_log_index: 0,
            prev_log_term: 0,
            entries: vec![
                LogEntry {
                    term: 1,
                    command: 1,
                },
                LogEntry {
                    term: 1,
                    command: 2,
                },
            ],
            leader_commit: 0,
        };
        let sz = |_: &u32| 4u64;
        assert_eq!(hb.wire_size(sz), 32);
        assert_eq!(loaded.wire_size(sz), 32 + 2 * 20);
    }
}
