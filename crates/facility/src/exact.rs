//! Exact UFL solver by exhaustive facility-subset enumeration.
//!
//! Intended as a **test oracle** for the heuristic solvers: with `m`
//! candidate facilities it enumerates all `2^m − 1` nonempty subsets, so it
//! is limited to [`MAX_EXACT_FACILITIES`]. For a fixed open set the optimal
//! assignment is each client's cheapest open facility, so each subset is
//! evaluated in `O(m·k)`.

use crate::instance::{SolveError, UflInstance, UflSolution};
use edgechain_telemetry as telemetry;

/// Largest instance the exact solver accepts (2^20 subsets ≈ 1M).
pub const MAX_EXACT_FACILITIES: usize = 20;

/// Solves `instance` optimally.
///
/// # Errors
///
/// * [`SolveError::TooLarge`] when `facilities > MAX_EXACT_FACILITIES`.
/// * [`SolveError::NoFeasibleFacility`] when all opening costs are infinite.
pub fn solve_exact(instance: &UflInstance) -> Result<UflSolution, SolveError> {
    telemetry::counter_add("ufl.exact_calls", 1);
    telemetry::time_wall("ufl.exact_ns", || solve_exact_inner(instance))
}

fn solve_exact_inner(instance: &UflInstance) -> Result<UflSolution, SolveError> {
    let m = instance.facilities();
    if m > MAX_EXACT_FACILITIES {
        return Err(SolveError::TooLarge {
            facilities: m,
            max: MAX_EXACT_FACILITIES,
        });
    }
    if !instance.has_finite_facility() {
        return Err(SolveError::NoFeasibleFacility);
    }
    let k = instance.clients();
    // Hoist the row slices: the subset loop below touches every
    // (facility, client) cell up to 2^m times, and going through the
    // bounds-checked `connect_cost(i, j)` accessor each time dominates
    // the oracle's runtime on test-sized instances.
    let rows: Vec<&[f64]> = (0..m).map(|i| instance.connect_row(i)).collect();
    let mut best_cost = f64::INFINITY;
    let mut best_mask: u32 = 0;
    for mask in 1u32..(1 << m) {
        let mut cost = 0.0;
        for i in 0..m {
            if mask & (1 << i) != 0 {
                cost += instance.open_cost(i);
            }
        }
        if cost >= best_cost {
            continue;
        }
        for j in 0..k {
            let mut cheapest = f64::INFINITY;
            for (i, row) in rows.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    cheapest = cheapest.min(row[j]);
                }
            }
            cost += cheapest;
            if cost >= best_cost {
                break;
            }
        }
        if cost < best_cost {
            best_cost = cost;
            best_mask = mask;
        }
    }

    let open: Vec<bool> = (0..m).map(|i| best_mask & (1 << i) != 0).collect();
    let mut solution = UflSolution {
        open,
        assignment: vec![0; k],
        cost: 0.0,
    };
    solution.reassign_best(instance);
    Ok(solution)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::UflInstance;

    #[test]
    fn picks_global_optimum() {
        // Opening both facilities (cost 2) beats either alone (cost 1+100).
        let inst = UflInstance::new(vec![1.0, 1.0], vec![vec![0.0, 100.0], vec![100.0, 0.0]]);
        let sol = solve_exact(&inst).unwrap();
        assert_eq!(sol.open_facilities(), vec![0, 1]);
        assert_eq!(sol.cost, 2.0);
    }

    #[test]
    fn single_expensive_facility_still_used() {
        let inst = UflInstance::new(vec![1000.0], vec![vec![1.0]]);
        let sol = solve_exact(&inst).unwrap();
        assert_eq!(sol.cost, 1001.0);
    }

    #[test]
    fn rejects_oversized() {
        let m = MAX_EXACT_FACILITIES + 1;
        let inst = UflInstance::new(vec![1.0; m], vec![vec![1.0]; m]);
        assert_eq!(
            solve_exact(&inst),
            Err(SolveError::TooLarge {
                facilities: m,
                max: MAX_EXACT_FACILITIES
            })
        );
    }

    #[test]
    fn rejects_all_infinite() {
        let inst = UflInstance::new(vec![f64::INFINITY], vec![vec![0.0]]);
        assert_eq!(solve_exact(&inst), Err(SolveError::NoFeasibleFacility));
    }

    #[test]
    fn never_worse_than_greedy() {
        let inst = UflInstance::new(
            vec![2.0, 3.0, 4.0],
            vec![
                vec![0.0, 1.0, 7.0, 3.0],
                vec![1.0, 0.0, 2.0, 6.0],
                vec![7.0, 2.0, 0.0, 1.0],
            ],
        );
        let exact = solve_exact(&inst).unwrap();
        let greedy = crate::greedy::solve_greedy(&inst).unwrap();
        assert!(exact.cost <= greedy.cost + 1e-12);
        assert!(exact.validate(&inst).is_ok());
    }
}
