//! Boundary stitching for region-decomposed facility location.
//!
//! At scale the allocation engine partitions the network into
//! radio-connected regions and solves one small UFL instance per region
//! (see `edgechain-core`'s allocation context). Independent per-region
//! optima can be jointly wasteful at region boundaries: a facility opened
//! just inside region A may be redundant when region B already opened one
//! a hop away. This module implements the *close pass* that stitches a
//! region's solution against the open facilities of its neighbors: a
//! region-local facility is closed when reassigning its clients — to other
//! local facilities or to an adjacent region's already-paid-for facility —
//! costs less than keeping it open.
//!
//! The pass is deterministic (facilities are considered in ascending `id`
//! order) and topology-agnostic: callers supply connection costs, so the
//! same code is exercised by synthetic unit tests and the simulator.

/// One candidate facility in a stitch pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StitchFacility {
    /// Caller-scoped identifier (the simulator passes global node ids).
    pub id: usize,
    /// Cost saved by closing this facility. External facilities carry
    /// `0.0`: their opening cost is already paid by their home region, so
    /// absorbing boundary clients is free.
    pub open_cost: f64,
    /// Opened by an adjacent region: may absorb clients but is never
    /// closed by this pass (its home region owns that decision).
    pub external: bool,
}

/// One close pass over the local facilities of a region solution.
///
/// `connect[f][c]` is the connection cost of client `c` to facility `f`
/// (facility-major, like [`crate::UflInstance`]); `assignment[c]` indexes
/// into `facilities`. Local facilities are visited in ascending `id`
/// order; each is closed when the reassignment delta of its clients minus
/// its opening cost is strictly negative and every client has a finite
/// alternative. The last remaining open facility is never closed.
///
/// Returns the post-pass open flags (externals always stay `true`);
/// `assignment` is updated in place for every client that moved.
///
/// # Panics
///
/// Panics when `connect` is not facility-major over all clients or when an
/// assignment is out of range.
pub fn stitch_close_pass(
    facilities: &[StitchFacility],
    connect: &[Vec<f64>],
    assignment: &mut [usize],
) -> Vec<bool> {
    assert_eq!(
        facilities.len(),
        connect.len(),
        "one connect row per facility"
    );
    let mut open = vec![true; facilities.len()];
    let mut order: Vec<usize> = (0..facilities.len())
        .filter(|&f| !facilities[f].external)
        .collect();
    order.sort_by_key(|&f| facilities[f].id);
    for f in order {
        if open.iter().filter(|&&o| o).count() <= 1 {
            break;
        }
        // Trial: close f, moving each of its clients to the cheapest
        // other open facility.
        let mut delta = -facilities[f].open_cost;
        let mut moves: Vec<(usize, usize)> = Vec::new();
        let mut feasible = true;
        for (c, &a) in assignment.iter().enumerate() {
            if a != f {
                continue;
            }
            let mut best: Option<(usize, f64)> = None;
            for (g, _) in facilities.iter().enumerate() {
                if g == f || !open[g] {
                    continue;
                }
                let cost = connect[g][c];
                if cost.is_finite() && best.is_none_or(|(_, bc)| cost < bc) {
                    best = Some((g, cost));
                }
            }
            match best {
                Some((g, cost)) => {
                    delta += cost - connect[f][c];
                    moves.push((c, g));
                }
                None => {
                    feasible = false;
                    break;
                }
            }
        }
        if feasible && delta < 0.0 {
            open[f] = false;
            for (c, g) in moves {
                assignment[c] = g;
            }
        }
    }
    open
}

/// The facility `id`s that actually serve a client after a stitch pass,
/// ascending and deduplicated. This is the replica set handed back to the
/// allocation engine: open-but-idle facilities (local zero-cost ones the
/// pass had no reason to close, or external candidates that absorbed
/// nothing) are excluded.
pub fn serving_ids(
    facilities: &[StitchFacility],
    open: &[bool],
    assignment: &[usize],
) -> Vec<usize> {
    let mut ids: Vec<usize> = assignment
        .iter()
        .map(|&f| {
            debug_assert!(open[f], "client assigned to a closed facility");
            facilities[f].id
        })
        .collect();
    ids.sort_unstable();
    ids.dedup();
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    fn local(id: usize, open_cost: f64) -> StitchFacility {
        StitchFacility {
            id,
            open_cost,
            external: false,
        }
    }

    fn external(id: usize) -> StitchFacility {
        StitchFacility {
            id,
            open_cost: 0.0,
            external: true,
        }
    }

    #[test]
    fn redundant_local_facility_is_closed() {
        // Two local facilities; merging them onto one saves an opening
        // cost of 10 against a 3-unit reassignment. The pass visits
        // ascending ids, so facility 0 is the one that closes.
        let facilities = vec![local(0, 10.0), local(1, 10.0)];
        let connect = vec![vec![0.0, 3.0], vec![3.0, 2.0]];
        let mut assignment = vec![0, 1];
        let open = stitch_close_pass(&facilities, &connect, &mut assignment);
        assert_eq!(open, vec![false, true]);
        assert_eq!(assignment, vec![1, 1]);
        assert_eq!(serving_ids(&facilities, &open, &assignment), vec![1]);
    }

    #[test]
    fn costly_move_keeps_facility_open() {
        // Closing facility 1 would save 1.0 but cost its client 5.0 extra.
        let facilities = vec![local(0, 1.0), local(1, 1.0)];
        let connect = vec![vec![0.0, 6.0], vec![6.0, 1.0]];
        let mut assignment = vec![0, 1];
        let open = stitch_close_pass(&facilities, &connect, &mut assignment);
        assert_eq!(open, vec![true, true]);
        assert_eq!(assignment, vec![0, 1]);
    }

    #[test]
    fn external_neighbor_absorbs_boundary_clients() {
        // An adjacent region's facility (free to use) sits one hop from
        // both clients: the local facility's opening cost is pure waste.
        let facilities = vec![local(5, 8.0), external(9)];
        let connect = vec![vec![0.0, 1.0], vec![1.0, 1.0]];
        let mut assignment = vec![0, 0];
        let open = stitch_close_pass(&facilities, &connect, &mut assignment);
        assert_eq!(open, vec![false, true]);
        assert_eq!(assignment, vec![1, 1]);
        assert_eq!(serving_ids(&facilities, &open, &assignment), vec![9]);
    }

    #[test]
    fn externals_are_never_closed_and_last_facility_survives() {
        // A lone local facility with a huge opening cost but no
        // alternative must stay open.
        let facilities = vec![local(2, 100.0)];
        let connect = vec![vec![0.0, 1.0]];
        let mut assignment = vec![0, 0];
        let open = stitch_close_pass(&facilities, &connect, &mut assignment);
        assert_eq!(open, vec![true]);
        // An unreachable alternative (infinite cost) also blocks closing.
        let facilities = vec![local(0, 100.0), external(7)];
        let connect = vec![vec![0.0, 0.0], vec![f64::INFINITY, f64::INFINITY]];
        let mut assignment = vec![0, 0];
        let open = stitch_close_pass(&facilities, &connect, &mut assignment);
        assert_eq!(open, vec![true, true]);
        assert_eq!(assignment, vec![0, 0]);
    }

    #[test]
    fn close_order_is_by_ascending_id() {
        // Both locals are individually closable against the external, but
        // after the lower id closes, the higher one keeps its clients only
        // if still beneficial — here both drain into the external.
        let facilities = vec![local(3, 5.0), local(1, 5.0), external(8)];
        let connect = vec![
            vec![0.0, 2.0, 2.0],
            vec![2.0, 0.0, 2.0],
            vec![1.0, 1.0, 1.0],
        ];
        let mut assignment = vec![0, 1, 1];
        let open = stitch_close_pass(&facilities, &connect, &mut assignment);
        assert_eq!(open, vec![false, false, true]);
        assert_eq!(assignment, vec![2, 2, 2]);
        assert_eq!(serving_ids(&facilities, &open, &assignment), vec![8]);
    }

    #[test]
    fn serving_ids_excludes_idle_facilities() {
        let facilities = vec![local(4, 0.0), local(6, 1.0), external(2)];
        let open = vec![true, true, true];
        let assignment = vec![1, 1];
        assert_eq!(serving_ids(&facilities, &open, &assignment), vec![6]);
    }
}
