//! Uncapacitated facility location (UFL) problem instances.
//!
//! The paper (Eq. 3–6) selects storing nodes for each data item / block by
//! solving, per item `k`:
//!
//! ```text
//! min  A·Σ_i f_i·y_ik + Σ_i Σ_j c_ij·x_ijk
//! s.t. Σ_i x_ijk ≥ 1        ∀j   (every node can access the item)
//!      y_ik ≥ x_ijk          ∀i,j (only open facilities serve)
//! ```
//!
//! where `f_i` is the Fairness Degree Cost (Eq. 1) and `c_ij` the
//! Range-Distance Cost (Eq. 2), with scaling factor `A = 1000`.
//! This module holds the instance representation; solvers live in
//! [`crate::greedy`], [`crate::local_search`], and [`crate::exact`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// Scaling factor between FDC and RDC from the paper ("we use feature
/// scaling to set the weight of FDC and RDC as 1000 : 1").
pub const FDC_SCALE: f64 = 1000.0;

/// Fairness Degree Cost (paper Eq. 1): `f = W / (W_tol − W)`.
///
/// Returns `+∞` when the node is full (`used >= total`), which the solvers
/// treat as "never open".
///
/// # Panics
///
/// Panics if `total` is zero.
///
/// # Examples
///
/// ```
/// use edgechain_facility::fdc;
///
/// assert_eq!(fdc(0, 250), 0.0);
/// assert!((fdc(125, 250) - 1.0).abs() < 1e-12);
/// assert!(fdc(250, 250).is_infinite());
/// ```
pub fn fdc(used: u64, total: u64) -> f64 {
    assert!(total > 0, "node storage capacity must be positive");
    if used >= total {
        f64::INFINITY
    } else {
        used as f64 / (total - used) as f64
    }
}

/// A UFL instance: `open_cost[i]` to open facility `i`, and
/// `connect[i][j]` for client `j` to use facility `i`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UflInstance {
    open_cost: Vec<f64>,
    connect: Vec<Vec<f64>>,
}

impl UflInstance {
    /// Builds an instance.
    ///
    /// # Panics
    ///
    /// Panics when there are no facilities or clients, when the matrix is
    /// ragged, or when any cost is NaN or negative.
    pub fn new(open_cost: Vec<f64>, connect: Vec<Vec<f64>>) -> Self {
        assert!(
            !open_cost.is_empty(),
            "instance needs at least one facility"
        );
        assert_eq!(
            open_cost.len(),
            connect.len(),
            "connect must have one row per facility"
        );
        let clients = connect[0].len();
        assert!(clients > 0, "instance needs at least one client");
        for (i, row) in connect.iter().enumerate() {
            assert_eq!(row.len(), clients, "ragged connect row {i}");
            for (j, &c) in row.iter().enumerate() {
                assert!(!c.is_nan() && c >= 0.0, "connect[{i}][{j}] invalid: {c}");
            }
        }
        for (i, &f) in open_cost.iter().enumerate() {
            assert!(!f.is_nan() && f >= 0.0, "open_cost[{i}] invalid: {f}");
        }
        UflInstance { open_cost, connect }
    }

    /// Builds the paper's storage-allocation instance where every node is
    /// both a candidate facility and a client: `open_cost[i] = A·f_i` and
    /// `connect[i][j] = c_ij`.
    ///
    /// `fdc` and the RDC callback are combined with [`FDC_SCALE`].
    pub fn from_costs<F>(fdc_values: &[f64], rdc: F) -> Self
    where
        F: Fn(usize, usize) -> f64,
    {
        let n = fdc_values.len();
        let open_cost: Vec<f64> = fdc_values.iter().map(|f| FDC_SCALE * f).collect();
        let connect: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| rdc(i, j)).collect())
            .collect();
        Self::new(open_cost, connect)
    }

    /// Number of candidate facilities.
    pub fn facilities(&self) -> usize {
        self.open_cost.len()
    }

    /// Number of clients.
    pub fn clients(&self) -> usize {
        self.connect[0].len()
    }

    /// Opening cost of facility `i`.
    pub fn open_cost(&self, i: usize) -> f64 {
        self.open_cost[i]
    }

    /// Connection cost of client `j` to facility `i`.
    pub fn connect_cost(&self, i: usize, j: usize) -> f64 {
        self.connect[i][j]
    }

    /// Facility `i`'s whole connection-cost row (`row[j] ==
    /// connect_cost(i, j)`). The solvers' inner loops iterate rows; a
    /// slice borrow beats `clients()` individual `connect_cost` calls.
    pub fn connect_row(&self, i: usize) -> &[f64] {
        &self.connect[i]
    }

    /// Overwrites facility `i`'s opening cost in place — the incremental
    /// update used by the allocation cache when a node's storage usage
    /// (hence FDC) changed but the topology (hence RDC) did not.
    ///
    /// # Panics
    ///
    /// Panics when `cost` is NaN or negative (same contract as
    /// [`UflInstance::new`]).
    pub fn set_open_cost(&mut self, i: usize, cost: f64) {
        assert!(
            !cost.is_nan() && cost >= 0.0,
            "open_cost[{i}] invalid: {cost}"
        );
        self.open_cost[i] = cost;
    }

    /// Whether at least one facility has finite opening cost.
    pub fn has_finite_facility(&self) -> bool {
        self.open_cost.iter().any(|f| f.is_finite())
    }

    /// Per-client cheapest/second-cheapest bookkeeping over the facilities
    /// marked `open`: returns `(b1, c1, c2)` where `b1[j]` is the
    /// lowest-index open facility achieving the minimum connection cost
    /// `c1[j]`, and `c2[j]` is the cheapest cost among the *other* open
    /// facilities (`+∞` with a single open facility).
    ///
    /// This is the data the close/swap trial costs of
    /// [`crate::local_search::improve`] and the greedy pruning pass need:
    /// dropping facility `i` re-routes client `j` to `c2[j]` when
    /// `b1[j] == i` and leaves it at `c1[j]` otherwise — no per-trial
    /// solution clone or reassignment required.
    ///
    /// # Panics
    ///
    /// Panics when no facility is marked open.
    pub(crate) fn two_cheapest_open(&self, open: &[bool]) -> (Vec<usize>, Vec<f64>, Vec<f64>) {
        let k = self.clients();
        let mut open_facilities = (0..self.facilities()).filter(|&i| open[i]);
        let first = open_facilities.next().expect("at least one facility open");
        let mut b1 = vec![first; k];
        let mut c1 = self.connect_row(first).to_vec();
        let mut c2 = vec![f64::INFINITY; k];
        for i in open_facilities {
            let row = self.connect_row(i);
            for j in 0..k {
                let c = row[j];
                if c < c1[j] {
                    c2[j] = c1[j];
                    c1[j] = c;
                    b1[j] = i;
                } else if c < c2[j] {
                    c2[j] = c;
                }
            }
        }
        (b1, c1, c2)
    }
}

/// A feasible solution: which facilities are open and where each client
/// connects.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UflSolution {
    /// `open[i]` — facility `i` is open.
    pub open: Vec<bool>,
    /// `assignment[j]` — the open facility serving client `j`.
    pub assignment: Vec<usize>,
    /// Total cost (opening + connection).
    pub cost: f64,
}

impl UflSolution {
    /// Indices of open facilities, ascending.
    pub fn open_facilities(&self) -> Vec<usize> {
        self.open
            .iter()
            .enumerate()
            .filter_map(|(i, &o)| o.then_some(i))
            .collect()
    }

    /// Recomputes the cost of this solution against `instance` and checks
    /// feasibility. Useful as a test oracle.
    ///
    /// # Errors
    ///
    /// Returns [`SolutionError`] when a client is assigned to a closed
    /// facility, dimensions mismatch, or no facility is open.
    pub fn validate(&self, instance: &UflInstance) -> Result<f64, SolutionError> {
        if self.open.len() != instance.facilities() || self.assignment.len() != instance.clients() {
            return Err(SolutionError::DimensionMismatch);
        }
        if !self.open.iter().any(|&o| o) {
            return Err(SolutionError::NoOpenFacility);
        }
        let mut cost = 0.0;
        for (i, &o) in self.open.iter().enumerate() {
            if o {
                cost += instance.open_cost(i);
            }
        }
        for (j, &i) in self.assignment.iter().enumerate() {
            if i >= self.open.len() || !self.open[i] {
                return Err(SolutionError::ClosedAssignment {
                    client: j,
                    facility: i,
                });
            }
            cost += instance.connect_cost(i, j);
        }
        Ok(cost)
    }

    /// Reassigns every client to its cheapest open facility and recomputes
    /// the cost. Any solver may call this as a cleanup step.
    ///
    /// Ties go to the lowest-index open facility. Row-major over
    /// [`UflInstance::connect_row`] so the client loop is a contiguous
    /// scan; the strict `<` keeps the first-minimal tie-break.
    pub fn reassign_best(&mut self, instance: &UflInstance) {
        let k = self.assignment.len();
        let mut open_facilities = (0..instance.facilities()).filter(|&i| self.open[i]);
        let first = open_facilities.next().expect("at least one facility open");
        let mut best_cost = instance.connect_row(first)[..k].to_vec();
        let mut best_fac = vec![first; k];
        for i in open_facilities {
            let row = instance.connect_row(i);
            for j in 0..k {
                if row[j] < best_cost[j] {
                    best_cost[j] = row[j];
                    best_fac[j] = i;
                }
            }
        }
        self.assignment = best_fac;
        self.cost = self
            .validate(instance)
            .expect("reassigned solution is feasible");
    }
}

/// Errors from [`UflSolution::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolutionError {
    /// Solution vectors do not match the instance shape.
    DimensionMismatch,
    /// No facility is open.
    NoOpenFacility,
    /// A client is assigned to a closed facility.
    ClosedAssignment {
        /// Offending client.
        client: usize,
        /// The closed (or out-of-range) facility.
        facility: usize,
    },
}

impl fmt::Display for SolutionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolutionError::DimensionMismatch => {
                write!(f, "solution shape does not match instance")
            }
            SolutionError::NoOpenFacility => write!(f, "no facility is open"),
            SolutionError::ClosedAssignment { client, facility } => {
                write!(f, "client {client} assigned to closed facility {facility}")
            }
        }
    }
}

impl std::error::Error for SolutionError {}

/// Errors from solving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// Every candidate facility has infinite opening cost (all nodes full).
    NoFeasibleFacility,
    /// Instance too large for the exact solver.
    TooLarge {
        /// Number of facilities in the instance.
        facilities: usize,
        /// Maximum supported by the exact solver.
        max: usize,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::NoFeasibleFacility => {
                write!(f, "all candidate facilities have infinite opening cost")
            }
            SolveError::TooLarge { facilities, max } => write!(
                f,
                "exact solver limited to {max} facilities, instance has {facilities}"
            ),
        }
    }
}

impl std::error::Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fdc_basics() {
        assert_eq!(fdc(0, 100), 0.0);
        assert_eq!(fdc(50, 100), 1.0);
        assert_eq!(fdc(99, 100), 99.0);
        assert!(fdc(100, 100).is_infinite());
        assert!(fdc(150, 100).is_infinite());
    }

    #[test]
    fn fdc_monotone_in_usage() {
        let mut prev = -1.0;
        for used in 0..100 {
            let f = fdc(used, 100);
            assert!(f > prev);
            prev = f;
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn fdc_zero_capacity_panics() {
        let _ = fdc(0, 0);
    }

    #[test]
    fn instance_accessors() {
        let inst = UflInstance::new(vec![1.0, 2.0], vec![vec![0.0, 5.0], vec![5.0, 0.0]]);
        assert_eq!(inst.facilities(), 2);
        assert_eq!(inst.clients(), 2);
        assert_eq!(inst.open_cost(1), 2.0);
        assert_eq!(inst.connect_cost(0, 1), 5.0);
        assert!(inst.has_finite_facility());
    }

    #[test]
    fn from_costs_applies_scale() {
        let inst = UflInstance::from_costs(&[0.5, 1.0], |i, j| if i == j { 0.0 } else { 3.0 });
        assert_eq!(inst.open_cost(0), 500.0);
        assert_eq!(inst.open_cost(1), 1000.0);
        assert_eq!(inst.connect_cost(0, 1), 3.0);
        assert_eq!(inst.connect_cost(1, 1), 0.0);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_matrix_rejected() {
        let _ = UflInstance::new(vec![1.0, 1.0], vec![vec![0.0, 1.0], vec![0.0]]);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn negative_cost_rejected() {
        let _ = UflInstance::new(vec![-1.0], vec![vec![0.0]]);
    }

    #[test]
    fn validate_catches_closed_assignment() {
        let inst = UflInstance::new(vec![1.0, 1.0], vec![vec![0.0, 1.0], vec![1.0, 0.0]]);
        let bad = UflSolution {
            open: vec![true, false],
            assignment: vec![0, 1],
            cost: 0.0,
        };
        assert_eq!(
            bad.validate(&inst),
            Err(SolutionError::ClosedAssignment {
                client: 1,
                facility: 1
            })
        );
    }

    #[test]
    fn validate_computes_cost() {
        let inst = UflInstance::new(vec![10.0, 20.0], vec![vec![0.0, 1.0], vec![1.0, 0.0]]);
        let sol = UflSolution {
            open: vec![true, false],
            assignment: vec![0, 0],
            cost: 0.0,
        };
        assert_eq!(sol.validate(&inst).unwrap(), 11.0);
    }

    #[test]
    fn reassign_best_moves_clients() {
        let inst = UflInstance::new(vec![1.0, 1.0], vec![vec![0.0, 9.0], vec![9.0, 0.0]]);
        let mut sol = UflSolution {
            open: vec![true, true],
            assignment: vec![1, 0], // deliberately bad
            cost: 0.0,
        };
        sol.reassign_best(&inst);
        assert_eq!(sol.assignment, vec![0, 1]);
        assert_eq!(sol.cost, 2.0);
    }

    #[test]
    fn no_open_facility_detected() {
        let inst = UflInstance::new(vec![1.0], vec![vec![0.0]]);
        let sol = UflSolution {
            open: vec![false],
            assignment: vec![0],
            cost: 0.0,
        };
        assert_eq!(sol.validate(&inst), Err(SolutionError::NoOpenFacility));
    }
}
