//! Local-search improvement for UFL solutions.
//!
//! Starting from any feasible solution (typically [`crate::solve_greedy`]'s
//! output), repeatedly applies the classic *open / close / swap* moves
//! while they improve the cost, reassigning clients optimally after each
//! move. Open/close/swap local search is a known constant-factor
//! (3-approximation) algorithm for metric UFL; here it serves as the
//! practical stand-in for the paper's cited 1.488-approximation
//! (Li 2013), which requires LP rounding.

use crate::instance::{SolveError, UflInstance, UflSolution};
use edgechain_telemetry as telemetry;

/// Hard cap on improvement rounds, a backstop against pathological cycling
/// (cycling cannot happen with strictly improving moves, but floating-point
/// ties make a cap prudent).
const MAX_ROUNDS: usize = 10_000;

/// Improves `solution` in place until no open/close/swap move helps.
///
/// Returns the number of improving moves applied.
pub fn improve(instance: &UflInstance, solution: &mut UflSolution) -> usize {
    let m = instance.facilities();
    let mut moves = 0;
    for _ in 0..MAX_ROUNDS {
        let mut best: Option<UflSolution> = None;

        // Move 1: open a closed (finite-cost) facility.
        for i in 0..m {
            if solution.open[i] || !instance.open_cost(i).is_finite() {
                continue;
            }
            let mut trial = solution.clone();
            trial.open[i] = true;
            trial.reassign_best(instance);
            if trial.cost < solution.cost - 1e-12 {
                replace_if_better(&mut best, trial);
            }
        }

        // Move 2: close an open facility (if another stays open).
        let open_now = solution.open_facilities();
        if open_now.len() > 1 {
            for &i in &open_now {
                let mut trial = solution.clone();
                trial.open[i] = false;
                trial.reassign_best(instance);
                if trial.cost < solution.cost - 1e-12 {
                    replace_if_better(&mut best, trial);
                }
            }
        }

        // Move 3: swap an open facility for a closed one.
        for &i in &open_now {
            for j in 0..m {
                if solution.open[j] || !instance.open_cost(j).is_finite() {
                    continue;
                }
                let mut trial = solution.clone();
                trial.open[i] = false;
                trial.open[j] = true;
                trial.reassign_best(instance);
                if trial.cost < solution.cost - 1e-12 {
                    replace_if_better(&mut best, trial);
                }
            }
        }

        match best {
            Some(better) => {
                *solution = better;
                moves += 1;
            }
            None => break,
        }
    }
    telemetry::counter_add("ufl.local_search.moves", moves as u64);
    moves
}

fn replace_if_better(best: &mut Option<UflSolution>, candidate: UflSolution) {
    match best {
        Some(b) if b.cost <= candidate.cost => {}
        _ => *best = Some(candidate),
    }
}

/// The workspace's production solver: greedy construction followed by
/// local-search refinement. This is what the allocation engine calls for
/// every data item and block.
///
/// # Errors
///
/// Returns [`SolveError::NoFeasibleFacility`] when every candidate facility
/// has infinite opening cost.
///
/// # Examples
///
/// ```
/// use edgechain_facility::{solve, UflInstance};
///
/// let inst = UflInstance::new(
///     vec![1.0, 1.0],
///     vec![vec![0.0, 10.0], vec![10.0, 0.0]],
/// );
/// let sol = solve(&inst)?;
/// assert_eq!(sol.open_facilities(), vec![0, 1]);
/// # Ok::<(), edgechain_facility::SolveError>(())
/// ```
pub fn solve(instance: &UflInstance) -> Result<UflSolution, SolveError> {
    telemetry::time_wall("ufl.solve_ns", || {
        let mut solution = crate::greedy::solve_greedy(instance)?;
        improve(instance, &mut solution);
        telemetry::counter_add("ufl.solve_calls", 1);
        if telemetry::is_enabled() {
            telemetry::record(
                "ufl.open_facilities",
                solution.open_facilities().len() as f64,
            );
        }
        Ok(solution)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::solve_exact;
    use crate::instance::UflInstance;

    /// Greedy alone can be suboptimal; local search must fix this instance.
    #[test]
    fn local_search_improves_greedy() {
        // Three facilities in a line; middle one is optimal alone.
        let inst = UflInstance::new(
            vec![1.0, 1.5, 1.0],
            vec![
                vec![0.0, 2.0, 4.0],
                vec![2.0, 0.0, 2.0],
                vec![4.0, 2.0, 0.0],
            ],
        );
        let sol = solve(&inst).unwrap();
        let exact = solve_exact(&inst).unwrap();
        assert!((sol.cost - exact.cost).abs() < 1e-9);
    }

    #[test]
    fn matches_exact_on_small_instances() {
        // Deterministic pseudo-random instances.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for trial in 0..30 {
            let m = 3 + trial % 5;
            let k = 4 + trial % 4;
            let open: Vec<f64> = (0..m).map(|_| next() * 10.0).collect();
            let conn: Vec<Vec<f64>> = (0..m)
                .map(|_| (0..k).map(|_| next() * 5.0).collect())
                .collect();
            let inst = UflInstance::new(open, conn);
            let heur = solve(&inst).unwrap();
            let exact = solve_exact(&inst).unwrap();
            assert!(
                heur.cost <= exact.cost * 1.2 + 1e-9,
                "trial {trial}: heuristic {} vs exact {}",
                heur.cost,
                exact.cost
            );
            assert!(heur.validate(&inst).is_ok());
        }
    }

    #[test]
    fn improve_returns_zero_when_optimal() {
        let inst = UflInstance::new(vec![1.0], vec![vec![0.0, 0.0]]);
        let mut sol = crate::greedy::solve_greedy(&inst).unwrap();
        assert_eq!(improve(&inst, &mut sol), 0);
    }

    #[test]
    fn solve_propagates_infeasibility() {
        let inst = UflInstance::new(vec![f64::INFINITY], vec![vec![0.0]]);
        assert!(solve(&inst).is_err());
    }
}
