//! Local-search improvement for UFL solutions.
//!
//! Starting from any feasible solution (typically [`crate::solve_greedy`]'s
//! output), repeatedly applies the classic *open / close / swap* moves
//! while they improve the cost, reassigning clients optimally after each
//! move. Open/close/swap local search is a known constant-factor
//! (3-approximation) algorithm for metric UFL; here it serves as the
//! practical stand-in for the paper's cited 1.488-approximation
//! (Li 2013), which requires LP rounding.
//!
//! ## Fast path
//!
//! Each round precomputes, per client, the cheapest and second-cheapest
//! open facility ([`UflInstance::two_cheapest_open`]); every trial cost is
//! then a closed-form sum — opening `i` serves client `j` at
//! `min(c1[j], c_ij)`, closing `i` re-routes its clients to `c2[j]`, a
//! swap combines both — instead of the former clone + full reassignment
//! per trial (`O(moves · m · k)` clones → `O(m · k)` per round plus one
//! reassignment for the winning move). The accumulation order of every
//! trial cost mirrors [`UflSolution::validate`], so accepted moves and
//! final solutions are bit-identical to the original implementation
//! (pinned by the `#[cfg(test)]` reference).

use crate::instance::{SolveError, UflInstance, UflSolution};
use edgechain_telemetry as telemetry;

/// Hard cap on improvement rounds, a backstop against pathological cycling
/// (cycling cannot happen with strictly improving moves, but floating-point
/// ties make a cap prudent).
const MAX_ROUNDS: usize = 10_000;

/// A candidate move: facilities to close and/or open this round.
#[derive(Clone, Copy)]
struct Move {
    close: Option<usize>,
    open: Option<usize>,
}

/// Improves `solution` in place until no open/close/swap move helps.
///
/// Returns the number of improving moves applied.
pub fn improve(instance: &UflInstance, solution: &mut UflSolution) -> usize {
    let m = instance.facilities();
    let k = instance.clients();
    let mut moves = 0;
    for _ in 0..MAX_ROUNDS {
        let open_now = solution.open_facilities();
        let (b1, c1, c2) = instance.two_cheapest_open(&solution.open);
        let mut best: Option<(f64, Move)> = None;

        // Move 1: open a closed (finite-cost) facility.
        for i in 0..m {
            if solution.open[i] || !instance.open_cost(i).is_finite() {
                continue;
            }
            let mut cost = 0.0;
            for o in 0..m {
                if solution.open[o] || o == i {
                    cost += instance.open_cost(o);
                }
            }
            let row = instance.connect_row(i);
            for j in 0..k {
                cost += if row[j] < c1[j] { row[j] } else { c1[j] };
            }
            if cost < solution.cost - 1e-12 {
                replace_if_better(
                    &mut best,
                    cost,
                    Move {
                        close: None,
                        open: Some(i),
                    },
                );
            }
        }

        // Move 2: close an open facility (if another stays open).
        if open_now.len() > 1 {
            for &i in &open_now {
                let mut cost = 0.0;
                for &o in &open_now {
                    if o != i {
                        cost += instance.open_cost(o);
                    }
                }
                for j in 0..k {
                    cost += if b1[j] == i { c2[j] } else { c1[j] };
                }
                if cost < solution.cost - 1e-12 {
                    replace_if_better(
                        &mut best,
                        cost,
                        Move {
                            close: Some(i),
                            open: None,
                        },
                    );
                }
            }
        }

        // Move 3: swap an open facility for a closed one.
        for &i in &open_now {
            for l in 0..m {
                if solution.open[l] || !instance.open_cost(l).is_finite() {
                    continue;
                }
                let mut cost = 0.0;
                for o in 0..m {
                    if (solution.open[o] && o != i) || o == l {
                        cost += instance.open_cost(o);
                    }
                }
                let row = instance.connect_row(l);
                for j in 0..k {
                    let without_i = if b1[j] == i { c2[j] } else { c1[j] };
                    cost += if row[j] < without_i {
                        row[j]
                    } else {
                        without_i
                    };
                }
                if cost < solution.cost - 1e-12 {
                    replace_if_better(
                        &mut best,
                        cost,
                        Move {
                            close: Some(i),
                            open: Some(l),
                        },
                    );
                }
            }
        }

        match best {
            Some((_, mv)) => {
                if let Some(i) = mv.close {
                    solution.open[i] = false;
                }
                if let Some(l) = mv.open {
                    solution.open[l] = true;
                }
                // Materialize only the winning move.
                solution.reassign_best(instance);
                moves += 1;
            }
            None => break,
        }
    }
    telemetry::counter_add("ufl.local_search.moves", moves as u64);
    moves
}

fn replace_if_better(best: &mut Option<(f64, Move)>, cost: f64, mv: Move) {
    match best {
        Some((b, _)) if *b <= cost => {}
        _ => *best = Some((cost, mv)),
    }
}

/// The workspace's production solver: greedy construction followed by
/// local-search refinement. This is what the allocation engine calls for
/// every data item and block.
///
/// # Errors
///
/// Returns [`SolveError::NoFeasibleFacility`] when every candidate facility
/// has infinite opening cost.
///
/// # Examples
///
/// ```
/// use edgechain_facility::{solve, UflInstance};
///
/// let inst = UflInstance::new(
///     vec![1.0, 1.0],
///     vec![vec![0.0, 10.0], vec![10.0, 0.0]],
/// );
/// let sol = solve(&inst)?;
/// assert_eq!(sol.open_facilities(), vec![0, 1]);
/// # Ok::<(), edgechain_facility::SolveError>(())
/// ```
pub fn solve(instance: &UflInstance) -> Result<UflSolution, SolveError> {
    telemetry::time_wall("ufl.solve_ns", || {
        let mut solution = crate::greedy::solve_greedy(instance)?;
        improve(instance, &mut solution);
        telemetry::counter_add("ufl.solve_calls", 1);
        if telemetry::is_enabled() {
            telemetry::record(
                "ufl.open_facilities",
                solution.open_facilities().len() as f64,
            );
        }
        Ok(solution)
    })
}

/// Warm-started solve: skips the greedy construction and runs local search
/// from `previous`'s open set re-validated against `instance` (facilities
/// whose opening cost went infinite are dropped; if none survive, the
/// cheapest finite facility seeds the search).
///
/// Intended for sequences of closely related instances — consecutive items
/// in one block, or an instance whose FDC costs drifted slightly — where
/// the previous optimum is one or two moves from the new one. The result
/// is feasible and never worse than the seed after reassignment, but it is
/// a *different heuristic trajectory* than [`solve`]: callers that promise
/// bit-identical output against the cold path must not substitute it.
///
/// # Errors
///
/// Returns [`SolveError::NoFeasibleFacility`] when every candidate
/// facility has infinite opening cost.
///
/// # Panics
///
/// Panics when `previous` was solved against an instance with a different
/// number of facilities or clients.
pub fn solve_warm(
    instance: &UflInstance,
    previous: &UflSolution,
) -> Result<UflSolution, SolveError> {
    telemetry::time_wall("ufl.solve_ns", || {
        if !instance.has_finite_facility() {
            return Err(SolveError::NoFeasibleFacility);
        }
        let m = instance.facilities();
        assert_eq!(previous.open.len(), m, "warm seed has wrong facility count");
        assert_eq!(
            previous.assignment.len(),
            instance.clients(),
            "warm seed has wrong client count"
        );
        let mut open: Vec<bool> = (0..m)
            .map(|i| previous.open[i] && instance.open_cost(i).is_finite())
            .collect();
        if !open.iter().any(|&o| o) {
            let mut cheapest = None;
            for i in 0..m {
                let f = instance.open_cost(i);
                if !f.is_finite() {
                    continue;
                }
                match cheapest {
                    None => cheapest = Some((f, i)),
                    Some((best, _)) if f < best => cheapest = Some((f, i)),
                    _ => {}
                }
            }
            let (_, i) = cheapest.expect("has_finite_facility checked above");
            open[i] = true;
        }
        let mut solution = UflSolution {
            open,
            assignment: vec![0; instance.clients()],
            cost: 0.0,
        };
        solution.reassign_best(instance);
        improve(instance, &mut solution);
        telemetry::counter_add("ufl.warm_calls", 1);
        if telemetry::is_enabled() {
            telemetry::record(
                "ufl.open_facilities",
                solution.open_facilities().len() as f64,
            );
        }
        Ok(solution)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::solve_exact;
    use crate::instance::UflInstance;

    /// The pre-rewrite `improve`, verbatim: one solution clone plus a full
    /// reassignment per trial. Reference the bookkeeping implementation
    /// must match bit-for-bit.
    fn improve_reference(instance: &UflInstance, solution: &mut UflSolution) -> usize {
        let m = instance.facilities();
        let mut moves = 0;
        for _ in 0..MAX_ROUNDS {
            let mut best: Option<UflSolution> = None;

            for i in 0..m {
                if solution.open[i] || !instance.open_cost(i).is_finite() {
                    continue;
                }
                let mut trial = solution.clone();
                trial.open[i] = true;
                trial.reassign_best(instance);
                if trial.cost < solution.cost - 1e-12 {
                    replace_if_better_reference(&mut best, trial);
                }
            }

            let open_now = solution.open_facilities();
            if open_now.len() > 1 {
                for &i in &open_now {
                    let mut trial = solution.clone();
                    trial.open[i] = false;
                    trial.reassign_best(instance);
                    if trial.cost < solution.cost - 1e-12 {
                        replace_if_better_reference(&mut best, trial);
                    }
                }
            }

            for &i in &open_now {
                for j in 0..m {
                    if solution.open[j] || !instance.open_cost(j).is_finite() {
                        continue;
                    }
                    let mut trial = solution.clone();
                    trial.open[i] = false;
                    trial.open[j] = true;
                    trial.reassign_best(instance);
                    if trial.cost < solution.cost - 1e-12 {
                        replace_if_better_reference(&mut best, trial);
                    }
                }
            }

            match best {
                Some(better) => {
                    *solution = better;
                    moves += 1;
                }
                None => break,
            }
        }
        moves
    }

    fn replace_if_better_reference(best: &mut Option<UflSolution>, candidate: UflSolution) {
        match best {
            Some(b) if b.cost <= candidate.cost => {}
            _ => *best = Some(candidate),
        }
    }

    /// Greedy alone can be suboptimal; local search must fix this instance.
    #[test]
    fn local_search_improves_greedy() {
        // Three facilities in a line; middle one is optimal alone.
        let inst = UflInstance::new(
            vec![1.0, 1.5, 1.0],
            vec![
                vec![0.0, 2.0, 4.0],
                vec![2.0, 0.0, 2.0],
                vec![4.0, 2.0, 0.0],
            ],
        );
        let sol = solve(&inst).unwrap();
        let exact = solve_exact(&inst).unwrap();
        assert!((sol.cost - exact.cost).abs() < 1e-9);
    }

    #[test]
    fn matches_exact_on_small_instances() {
        // Deterministic pseudo-random instances.
        let mut state = 0x12345678u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for trial in 0..30 {
            let m = 3 + trial % 5;
            let k = 4 + trial % 4;
            let open: Vec<f64> = (0..m).map(|_| next() * 10.0).collect();
            let conn: Vec<Vec<f64>> = (0..m)
                .map(|_| (0..k).map(|_| next() * 5.0).collect())
                .collect();
            let inst = UflInstance::new(open, conn);
            let heur = solve(&inst).unwrap();
            let exact = solve_exact(&inst).unwrap();
            assert!(
                heur.cost <= exact.cost * 1.2 + 1e-9,
                "trial {trial}: heuristic {} vs exact {}",
                heur.cost,
                exact.cost
            );
            assert!(heur.validate(&inst).is_ok());
        }
    }

    #[test]
    fn improve_returns_zero_when_optimal() {
        let inst = UflInstance::new(vec![1.0], vec![vec![0.0, 0.0]]);
        let mut sol = crate::greedy::solve_greedy(&inst).unwrap();
        assert_eq!(improve(&inst, &mut sol), 0);
    }

    #[test]
    fn solve_propagates_infeasibility() {
        let inst = UflInstance::new(vec![f64::INFINITY], vec![vec![0.0]]);
        assert!(solve(&inst).is_err());
        let seed = UflSolution {
            open: vec![true],
            assignment: vec![0],
            cost: 0.0,
        };
        assert!(solve_warm(&inst, &seed).is_err());
    }

    /// Bookkeeping trials must accept the same moves and land on the same
    /// solutions as the clone-per-trial reference, bit for bit.
    #[test]
    fn fast_improve_matches_reference_exactly() {
        let mut state = 0xC0FFEEu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for trial in 0..120 {
            let m = 2 + trial % 9;
            let k = 1 + trial % 11;
            let open: Vec<f64> = (0..m)
                .map(|_| {
                    let v = next();
                    if v > 0.9 {
                        f64::INFINITY
                    } else {
                        (v * 30.0).round()
                    }
                })
                .collect();
            let conn: Vec<Vec<f64>> = (0..m)
                .map(|_| (0..k).map(|_| (next() * 6.0).round()).collect())
                .collect();
            if open.iter().all(|f| !f.is_finite()) {
                continue;
            }
            let inst = UflInstance::new(open, conn);
            let start = crate::greedy::solve_greedy(&inst).unwrap();
            let mut fast = start.clone();
            let mut reference = start;
            let fast_moves = improve(&inst, &mut fast);
            let reference_moves = improve_reference(&inst, &mut reference);
            assert_eq!(fast_moves, reference_moves, "trial {trial}: move counts");
            assert_eq!(fast.open, reference.open, "trial {trial}: open sets");
            assert_eq!(
                fast.assignment, reference.assignment,
                "trial {trial}: assignments"
            );
            assert_eq!(
                fast.cost.to_bits(),
                reference.cost.to_bits(),
                "trial {trial}: cost bits"
            );
        }
    }

    #[test]
    fn warm_start_finds_same_quality_from_good_seed() {
        let inst = UflInstance::new(
            vec![1.0, 1.5, 1.0],
            vec![
                vec![0.0, 2.0, 4.0],
                vec![2.0, 0.0, 2.0],
                vec![4.0, 2.0, 0.0],
            ],
        );
        let cold = solve(&inst).unwrap();
        let warm = solve_warm(&inst, &cold).unwrap();
        assert_eq!(warm.cost.to_bits(), cold.cost.to_bits());
        assert_eq!(warm.open, cold.open);
    }

    #[test]
    fn warm_start_recovers_from_infeasible_seed() {
        // The seed's only open facility became infinite (node filled up);
        // the warm path must reseed from the cheapest finite facility.
        let inst = UflInstance::new(
            vec![f64::INFINITY, 2.0, 5.0],
            vec![vec![0.0, 1.0], vec![1.0, 0.0], vec![3.0, 3.0]],
        );
        let seed = UflSolution {
            open: vec![true, false, false],
            assignment: vec![0, 0],
            cost: 1.0,
        };
        let warm = solve_warm(&inst, &seed).unwrap();
        assert!(warm.validate(&inst).is_ok());
        assert!(!warm.open[0], "infinite facility must stay closed");
    }

    #[test]
    fn warm_start_never_worse_than_seed_quality() {
        let mut state = 0xABCDEFu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for _ in 0..40 {
            let m = 3 + (next() * 6.0) as usize;
            let k = 2 + (next() * 6.0) as usize;
            let open: Vec<f64> = (0..m).map(|_| next() * 20.0).collect();
            let conn: Vec<Vec<f64>> = (0..m)
                .map(|_| (0..k).map(|_| next() * 8.0).collect())
                .collect();
            let inst = UflInstance::new(open, conn);
            let cold = solve(&inst).unwrap();
            let warm = solve_warm(&inst, &cold).unwrap();
            assert!(warm.cost <= cold.cost + 1e-9);
            assert!(warm.validate(&inst).is_ok());
        }
    }
}
