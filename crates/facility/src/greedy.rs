//! Greedy UFL approximation (Hochbaum-style set-cover greedy).
//!
//! Repeatedly picks the (facility, client-prefix) pair with the lowest
//! amortized cost `(f_i + Σ_{j∈S} c_ij) / |S|`, where `S` ranges over
//! prefixes of the not-yet-covered clients sorted by connection cost to
//! `i`. Already-open facilities participate with `f_i = 0`, so late
//! clients can join earlier facilities for free. This is the classic
//! `O(ln n)`-approximation; combined with the local search in
//! [`crate::local_search`] it is near-optimal on the paper's n ≤ 50
//! instances (verified against [`crate::exact`] in tests).

use crate::instance::{SolveError, UflInstance, UflSolution};
use edgechain_telemetry as telemetry;

/// Solves `instance` greedily.
///
/// # Errors
///
/// Returns [`SolveError::NoFeasibleFacility`] when every facility has an
/// infinite opening cost (in the paper's setting: all nodes are full).
pub fn solve_greedy(instance: &UflInstance) -> Result<UflSolution, SolveError> {
    telemetry::counter_add("ufl.greedy_calls", 1);
    telemetry::time_wall("ufl.greedy_ns", || solve_greedy_inner(instance))
}

fn solve_greedy_inner(instance: &UflInstance) -> Result<UflSolution, SolveError> {
    if !instance.has_finite_facility() {
        return Err(SolveError::NoFeasibleFacility);
    }
    let m = instance.facilities();
    let k = instance.clients();
    let mut open = vec![false; m];
    let mut assignment = vec![usize::MAX; k];
    let mut uncovered: Vec<usize> = (0..k).collect();

    while !uncovered.is_empty() {
        let mut best: Option<(f64, usize, usize)> = None; // (ratio, facility, take)
        #[allow(clippy::needless_range_loop)] // i also feeds connect_cost(i, j)
        for i in 0..m {
            let f_cost = if open[i] { 0.0 } else { instance.open_cost(i) };
            if !f_cost.is_finite() {
                continue;
            }
            // Sort uncovered clients by their connection cost to i.
            let mut costs: Vec<f64> = uncovered
                .iter()
                .map(|&j| instance.connect_cost(i, j))
                .collect();
            costs.sort_by(|a, b| a.partial_cmp(b).expect("costs are not NaN"));
            let mut running = f_cost;
            for (idx, c) in costs.iter().enumerate() {
                if !c.is_finite() {
                    break;
                }
                running += c;
                let ratio = running / (idx as f64 + 1.0);
                let better = match best {
                    None => true,
                    Some((r, _, _)) => ratio < r,
                };
                if better {
                    best = Some((ratio, i, idx + 1));
                }
            }
        }
        let (_, fac, take) = best.ok_or(SolveError::NoFeasibleFacility)?;
        open[fac] = true;
        // Claim the `take` cheapest uncovered clients for `fac`.
        let mut claimed: Vec<usize> = uncovered.clone();
        claimed.sort_by(|&a, &b| {
            instance
                .connect_cost(fac, a)
                .partial_cmp(&instance.connect_cost(fac, b))
                .expect("costs are not NaN")
        });
        for &j in claimed.iter().take(take) {
            assignment[j] = fac;
        }
        uncovered.retain(|&j| assignment[j] == usize::MAX);
    }

    let mut solution = UflSolution {
        open,
        assignment,
        cost: 0.0,
    };
    // Cleanup: every client to its cheapest open facility, then drop
    // facilities that no longer pay for themselves.
    solution.reassign_best(instance);
    prune_useless(instance, &mut solution);
    Ok(solution)
}

/// Closes any open facility whose removal lowers the total cost (keeping at
/// least one open), reassigning clients optimally after each close.
fn prune_useless(instance: &UflInstance, solution: &mut UflSolution) {
    loop {
        let open_now: Vec<usize> = solution.open_facilities();
        if open_now.len() <= 1 {
            return;
        }
        let mut improved = false;
        for &i in &open_now {
            let mut trial = solution.clone();
            trial.open[i] = false;
            if !trial.open.iter().any(|&o| o) {
                continue;
            }
            trial.reassign_best(instance);
            if trial.cost < solution.cost {
                *solution = trial;
                improved = true;
                break;
            }
        }
        if !improved {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::UflInstance;

    #[test]
    fn single_facility_trivial() {
        let inst = UflInstance::new(vec![5.0], vec![vec![1.0, 2.0, 3.0]]);
        let sol = solve_greedy(&inst).unwrap();
        assert_eq!(sol.open, vec![true]);
        assert_eq!(sol.assignment, vec![0, 0, 0]);
        assert_eq!(sol.cost, 11.0);
        assert_eq!(sol.validate(&inst).unwrap(), sol.cost);
    }

    #[test]
    fn cheap_facility_preferred() {
        // Facility 0 is expensive to open, facility 1 cheap and equally close.
        let inst = UflInstance::new(vec![100.0, 1.0], vec![vec![1.0, 1.0], vec![1.0, 1.0]]);
        let sol = solve_greedy(&inst).unwrap();
        assert_eq!(sol.open_facilities(), vec![1]);
    }

    #[test]
    fn two_clusters_open_two() {
        // Two far-apart clusters; serving across costs 100.
        let inst = UflInstance::new(
            vec![1.0, 1.0],
            vec![vec![0.0, 0.0, 100.0, 100.0], vec![100.0, 100.0, 0.0, 0.0]],
        );
        let sol = solve_greedy(&inst).unwrap();
        assert_eq!(sol.open_facilities(), vec![0, 1]);
        assert_eq!(sol.cost, 2.0);
    }

    #[test]
    fn infinite_facility_never_opened() {
        let inst = UflInstance::new(
            vec![f64::INFINITY, 1.0],
            vec![vec![0.0, 0.0], vec![2.0, 2.0]],
        );
        let sol = solve_greedy(&inst).unwrap();
        assert_eq!(sol.open_facilities(), vec![1]);
    }

    #[test]
    fn all_infinite_is_error() {
        let inst = UflInstance::new(
            vec![f64::INFINITY, f64::INFINITY],
            vec![vec![0.0], vec![0.0]],
        );
        assert_eq!(solve_greedy(&inst), Err(SolveError::NoFeasibleFacility));
    }

    #[test]
    fn solution_always_feasible() {
        // A grid of asymmetric costs.
        let inst = UflInstance::new(
            vec![3.0, 7.0, 2.0],
            vec![
                vec![0.0, 4.0, 9.0, 2.0],
                vec![4.0, 0.0, 1.0, 8.0],
                vec![9.0, 1.0, 0.0, 3.0],
            ],
        );
        let sol = solve_greedy(&inst).unwrap();
        let recomputed = sol.validate(&inst).unwrap();
        assert!((recomputed - sol.cost).abs() < 1e-9);
    }

    #[test]
    fn pruning_removes_redundant_facility() {
        // Free-to-open facility 1 is dominated once 0 is open.
        let inst = UflInstance::new(vec![0.5, 10.0], vec![vec![0.0, 0.0], vec![0.0, 0.0]]);
        let sol = solve_greedy(&inst).unwrap();
        assert_eq!(sol.open_facilities(), vec![0]);
    }
}
