//! Greedy UFL approximation (Hochbaum-style set-cover greedy).
//!
//! Repeatedly picks the (facility, client-prefix) pair with the lowest
//! amortized cost `(f_i + Σ_{j∈S} c_ij) / |S|`, where `S` ranges over
//! prefixes of the not-yet-covered clients sorted by connection cost to
//! `i`. Already-open facilities participate with `f_i = 0`, so late
//! clients can join earlier facilities for free. This is the classic
//! `O(ln n)`-approximation; combined with the local search in
//! [`crate::local_search`] it is near-optimal on the paper's n ≤ 50
//! instances (verified against [`crate::exact`] in tests).
//!
//! ## Fast path
//!
//! The per-facility client order is a property of the *instance*, not of
//! the covering state, so it is sorted **once** up front and each opening
//! round walks the pre-sorted order skipping covered clients — replacing
//! the original per-round full re-sorts (`O(rounds · m · k log k)` →
//! `O(m · k log k + rounds · m · k)`). Because the sorts are stable and
//! filtering a stably-sorted list to a subset preserves its relative
//! order, every round sees exactly the cost sequence the re-sorting
//! implementation saw, so prefix sums, ratios, tie-breaks, and claimed
//! clients are bit-identical (the `#[cfg(test)]` reference implementation
//! pins this). The final pruning pass uses cheapest/second-cheapest
//! bookkeeping ([`UflInstance::two_cheapest_open`]) instead of cloning and
//! reassigning a trial solution per open facility.

use crate::instance::{SolveError, UflInstance, UflSolution};
use edgechain_telemetry as telemetry;

/// Solves `instance` greedily.
///
/// # Errors
///
/// Returns [`SolveError::NoFeasibleFacility`] when every facility has an
/// infinite opening cost (in the paper's setting: all nodes are full).
pub fn solve_greedy(instance: &UflInstance) -> Result<UflSolution, SolveError> {
    telemetry::counter_add("ufl.greedy_calls", 1);
    telemetry::time_wall("ufl.greedy_ns", || solve_greedy_inner(instance))
}

fn solve_greedy_inner(instance: &UflInstance) -> Result<UflSolution, SolveError> {
    if !instance.has_finite_facility() {
        return Err(SolveError::NoFeasibleFacility);
    }
    let m = instance.facilities();
    let k = instance.clients();
    // Each finite facility's clients, stably pre-sorted by connection
    // cost (ties in ascending client id). Infinite facilities never
    // participate, so their order is never consulted.
    let order: Vec<Vec<u32>> = (0..m)
        .map(|i| {
            if !instance.open_cost(i).is_finite() {
                return Vec::new();
            }
            let row = instance.connect_row(i);
            let mut idx: Vec<u32> = (0..k as u32).collect();
            idx.sort_by(|&a, &b| {
                row[a as usize]
                    .partial_cmp(&row[b as usize])
                    .expect("costs are not NaN")
            });
            idx
        })
        .collect();

    let mut open = vec![false; m];
    let mut assignment = vec![usize::MAX; k];
    let mut covered = 0usize;

    while covered < k {
        let mut best: Option<(f64, usize, usize)> = None; // (ratio, facility, take)
        for i in 0..m {
            let f_cost = if open[i] { 0.0 } else { instance.open_cost(i) };
            if !f_cost.is_finite() {
                continue;
            }
            let row = instance.connect_row(i);
            let mut running = f_cost;
            let mut prefix = 0usize;
            for &j in &order[i] {
                if assignment[j as usize] != usize::MAX {
                    continue; // already covered
                }
                let c = row[j as usize];
                if !c.is_finite() {
                    break;
                }
                running += c;
                prefix += 1;
                let ratio = running / prefix as f64;
                let better = match best {
                    None => true,
                    Some((r, _, _)) => ratio < r,
                };
                if better {
                    best = Some((ratio, i, prefix));
                }
            }
        }
        let (_, fac, take) = best.ok_or(SolveError::NoFeasibleFacility)?;
        open[fac] = true;
        // Claim the `take` cheapest uncovered clients for `fac` — the
        // pre-sorted order filtered to uncovered clients.
        let mut taken = 0usize;
        for &j in &order[fac] {
            if taken == take {
                break;
            }
            let j = j as usize;
            if assignment[j] == usize::MAX {
                assignment[j] = fac;
                taken += 1;
                covered += 1;
            }
        }
    }

    let mut solution = UflSolution {
        open,
        assignment,
        cost: 0.0,
    };
    // Cleanup: every client to its cheapest open facility, then drop
    // facilities that no longer pay for themselves.
    solution.reassign_best(instance);
    prune_useless(instance, &mut solution);
    Ok(solution)
}

/// Closes any open facility whose removal lowers the total cost (keeping at
/// least one open), reassigning clients optimally after each close.
///
/// Trial costs come from cheapest/second-cheapest bookkeeping: closing `i`
/// re-routes exactly the clients with `b1[j] == i` to `c2[j]`. The
/// accumulation order (open costs in ascending facility order, then
/// clients in ascending id order) mirrors [`UflSolution::validate`], so
/// each trial cost is bit-identical to what the former clone-and-reassign
/// trial computed.
fn prune_useless(instance: &UflInstance, solution: &mut UflSolution) {
    let k = instance.clients();
    loop {
        let open_now: Vec<usize> = solution.open_facilities();
        if open_now.len() <= 1 {
            return;
        }
        let (b1, c1, c2) = instance.two_cheapest_open(&solution.open);
        let mut improved = false;
        for &i in &open_now {
            let mut cost = 0.0;
            for &o in &open_now {
                if o != i {
                    cost += instance.open_cost(o);
                }
            }
            for j in 0..k {
                cost += if b1[j] == i { c2[j] } else { c1[j] };
            }
            if cost < solution.cost {
                solution.open[i] = false;
                solution.reassign_best(instance);
                improved = true;
                break;
            }
        }
        if !improved {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::UflInstance;

    /// The pre-rewrite greedy, verbatim: per-round full re-sorts and a
    /// clone-per-trial pruning pass. Kept as the behavioral reference the
    /// fast implementation must match bit-for-bit.
    pub(super) fn solve_greedy_reference(
        instance: &UflInstance,
    ) -> Result<UflSolution, SolveError> {
        if !instance.has_finite_facility() {
            return Err(SolveError::NoFeasibleFacility);
        }
        let m = instance.facilities();
        let k = instance.clients();
        let mut open = vec![false; m];
        let mut assignment = vec![usize::MAX; k];
        let mut uncovered: Vec<usize> = (0..k).collect();

        while !uncovered.is_empty() {
            let mut best: Option<(f64, usize, usize)> = None;
            #[allow(clippy::needless_range_loop)]
            for i in 0..m {
                let f_cost = if open[i] { 0.0 } else { instance.open_cost(i) };
                if !f_cost.is_finite() {
                    continue;
                }
                let mut costs: Vec<f64> = uncovered
                    .iter()
                    .map(|&j| instance.connect_cost(i, j))
                    .collect();
                costs.sort_by(|a, b| a.partial_cmp(b).expect("costs are not NaN"));
                let mut running = f_cost;
                for (idx, c) in costs.iter().enumerate() {
                    if !c.is_finite() {
                        break;
                    }
                    running += c;
                    let ratio = running / (idx as f64 + 1.0);
                    let better = match best {
                        None => true,
                        Some((r, _, _)) => ratio < r,
                    };
                    if better {
                        best = Some((ratio, i, idx + 1));
                    }
                }
            }
            let (_, fac, take) = best.ok_or(SolveError::NoFeasibleFacility)?;
            open[fac] = true;
            let mut claimed: Vec<usize> = uncovered.clone();
            claimed.sort_by(|&a, &b| {
                instance
                    .connect_cost(fac, a)
                    .partial_cmp(&instance.connect_cost(fac, b))
                    .expect("costs are not NaN")
            });
            for &j in claimed.iter().take(take) {
                assignment[j] = fac;
            }
            uncovered.retain(|&j| assignment[j] == usize::MAX);
        }

        let mut solution = UflSolution {
            open,
            assignment,
            cost: 0.0,
        };
        solution.reassign_best(instance);
        prune_useless_reference(instance, &mut solution);
        Ok(solution)
    }

    fn prune_useless_reference(instance: &UflInstance, solution: &mut UflSolution) {
        loop {
            let open_now: Vec<usize> = solution.open_facilities();
            if open_now.len() <= 1 {
                return;
            }
            let mut improved = false;
            for &i in &open_now {
                let mut trial = solution.clone();
                trial.open[i] = false;
                if !trial.open.iter().any(|&o| o) {
                    continue;
                }
                trial.reassign_best(instance);
                if trial.cost < solution.cost {
                    *solution = trial;
                    improved = true;
                    break;
                }
            }
            if !improved {
                return;
            }
        }
    }

    #[test]
    fn single_facility_trivial() {
        let inst = UflInstance::new(vec![5.0], vec![vec![1.0, 2.0, 3.0]]);
        let sol = solve_greedy(&inst).unwrap();
        assert_eq!(sol.open, vec![true]);
        assert_eq!(sol.assignment, vec![0, 0, 0]);
        assert_eq!(sol.cost, 11.0);
        assert_eq!(sol.validate(&inst).unwrap(), sol.cost);
    }

    #[test]
    fn cheap_facility_preferred() {
        // Facility 0 is expensive to open, facility 1 cheap and equally close.
        let inst = UflInstance::new(vec![100.0, 1.0], vec![vec![1.0, 1.0], vec![1.0, 1.0]]);
        let sol = solve_greedy(&inst).unwrap();
        assert_eq!(sol.open_facilities(), vec![1]);
    }

    #[test]
    fn two_clusters_open_two() {
        // Two far-apart clusters; serving across costs 100.
        let inst = UflInstance::new(
            vec![1.0, 1.0],
            vec![vec![0.0, 0.0, 100.0, 100.0], vec![100.0, 100.0, 0.0, 0.0]],
        );
        let sol = solve_greedy(&inst).unwrap();
        assert_eq!(sol.open_facilities(), vec![0, 1]);
        assert_eq!(sol.cost, 2.0);
    }

    #[test]
    fn infinite_facility_never_opened() {
        let inst = UflInstance::new(
            vec![f64::INFINITY, 1.0],
            vec![vec![0.0, 0.0], vec![2.0, 2.0]],
        );
        let sol = solve_greedy(&inst).unwrap();
        assert_eq!(sol.open_facilities(), vec![1]);
    }

    #[test]
    fn all_infinite_is_error() {
        let inst = UflInstance::new(
            vec![f64::INFINITY, f64::INFINITY],
            vec![vec![0.0], vec![0.0]],
        );
        assert_eq!(solve_greedy(&inst), Err(SolveError::NoFeasibleFacility));
    }

    #[test]
    fn solution_always_feasible() {
        // A grid of asymmetric costs.
        let inst = UflInstance::new(
            vec![3.0, 7.0, 2.0],
            vec![
                vec![0.0, 4.0, 9.0, 2.0],
                vec![4.0, 0.0, 1.0, 8.0],
                vec![9.0, 1.0, 0.0, 3.0],
            ],
        );
        let sol = solve_greedy(&inst).unwrap();
        let recomputed = sol.validate(&inst).unwrap();
        assert!((recomputed - sol.cost).abs() < 1e-9);
    }

    #[test]
    fn pruning_removes_redundant_facility() {
        // Free-to-open facility 1 is dominated once 0 is open.
        let inst = UflInstance::new(vec![0.5, 10.0], vec![vec![0.0, 0.0], vec![0.0, 0.0]]);
        let sol = solve_greedy(&inst).unwrap();
        assert_eq!(sol.open_facilities(), vec![0]);
    }

    /// Deterministic pseudo-random instance generator shared by the
    /// fast-vs-reference equivalence checks. Mixes in duplicate costs and
    /// occasional infinite opening costs to exercise tie-breaks.
    fn random_instance(seed: u64, m: usize, k: usize) -> UflInstance {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        let open: Vec<f64> = (0..m)
            .map(|_| {
                let v = next();
                if v > 0.93 {
                    f64::INFINITY
                } else {
                    // Quantize to force cost ties.
                    (v * 40.0).round()
                }
            })
            .collect();
        let conn: Vec<Vec<f64>> = (0..m)
            .map(|_| (0..k).map(|_| (next() * 8.0).round()).collect())
            .collect();
        if open.iter().all(|f| !f.is_finite()) {
            let mut open = open;
            open[0] = 1.0;
            return UflInstance::new(open, conn);
        }
        UflInstance::new(open, conn)
    }

    /// The rewritten greedy must reproduce the reference bit-for-bit:
    /// same open set, same assignment, same cost bits.
    #[test]
    fn fast_greedy_matches_reference_exactly() {
        for seed in 0..200u64 {
            let m = 2 + (seed as usize * 7) % 12;
            let k = 1 + (seed as usize * 5) % 15;
            let inst = random_instance(seed, m, k);
            let fast = solve_greedy(&inst).unwrap();
            let reference = solve_greedy_reference(&inst).unwrap();
            assert_eq!(fast.open, reference.open, "seed {seed}: open sets differ");
            assert_eq!(
                fast.assignment, reference.assignment,
                "seed {seed}: assignments differ"
            );
            assert_eq!(
                fast.cost.to_bits(),
                reference.cost.to_bits(),
                "seed {seed}: cost bits differ ({} vs {})",
                fast.cost,
                reference.cost
            );
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_instance() -> impl Strategy<Value = UflInstance> {
            ((2usize..12), (1usize..12)).prop_flat_map(|(m, k)| {
                let opens = prop::collection::vec(0.0f64..50.0, m);
                let conns = prop::collection::vec(prop::collection::vec(0.0f64..10.0, k), m);
                (opens, conns).prop_map(|(o, c)| UflInstance::new(o, c))
            })
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// Property form of the equivalence check: on arbitrary
            /// instances the rewritten greedy returns the same cost (and
            /// solution) as the old implementation.
            #[test]
            fn rewritten_greedy_equals_old_greedy(inst in arb_instance()) {
                let fast = solve_greedy(&inst).unwrap();
                let reference = solve_greedy_reference(&inst).unwrap();
                prop_assert_eq!(fast.cost.to_bits(), reference.cost.to_bits());
                prop_assert_eq!(fast.open, reference.open);
                prop_assert_eq!(fast.assignment, reference.assignment);
            }
        }
    }
}
