//! Uncapacitated facility location (UFL) for fair edge storage allocation.
//!
//! The paper's resource-allocation step (Eq. 3–6) is, per data item or
//! block, a UFL instance whose facility cost is the scaled Fairness Degree
//! Cost ([`fdc`], Eq. 1) and whose connection cost is the Range-Distance
//! Cost (Eq. 2). UFL is NP-hard; the paper cites Li's 1.488-approximation,
//! and this crate provides the practical pipeline used by the allocation
//! engine:
//!
//! 1. [`solve_greedy`] — Hochbaum-style greedy construction,
//! 2. [`solve`] — greedy plus open/close/swap local search (the default),
//! 3. [`solve_exact`] — an exhaustive oracle for small instances, used by
//!    the test suite to bound the heuristics' optimality gap.
//!
//! # Examples
//!
//! ```
//! use edgechain_facility::{fdc, solve, UflInstance};
//!
//! // Three nodes; node 2 is nearly full so its FDC is high.
//! let fdcs = [fdc(10, 250), fdc(50, 250), fdc(240, 250)];
//! let hop = |i: usize, j: usize| if i == j { 0.0 } else { 1.0 };
//! let inst = UflInstance::from_costs(&fdcs, hop);
//! let sol = solve(&inst)?;
//! // The nearly-full node is not chosen as a storing node.
//! assert!(!sol.open[2]);
//! # Ok::<(), edgechain_facility::SolveError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exact;
pub mod greedy;
pub mod instance;
pub mod local_search;
pub mod region;

pub use exact::{solve_exact, MAX_EXACT_FACILITIES};
pub use greedy::solve_greedy;
pub use instance::{fdc, SolutionError, SolveError, UflInstance, UflSolution, FDC_SCALE};
pub use local_search::{improve, solve, solve_warm};
pub use region::{serving_ids, stitch_close_pass, StitchFacility};
