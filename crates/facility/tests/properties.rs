//! Property-based tests for the UFL solvers: feasibility, optimality
//! bounds against the exact oracle, and local-search monotonicity.

use edgechain_facility::{fdc, improve, solve, solve_exact, solve_greedy, UflInstance};
use proptest::prelude::*;

/// Random instances shaped like the paper's: small facility costs (scaled
/// FDC) and hop-like connection costs with free self-connection.
fn arb_instance() -> impl Strategy<Value = UflInstance> {
    (2usize..10).prop_flat_map(|n| {
        let opens = prop::collection::vec(0.0f64..50.0, n);
        let conns = prop::collection::vec(prop::collection::vec(0.0f64..10.0, n), n);
        (opens, conns).prop_map(|(o, c)| UflInstance::new(o, c))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn greedy_solution_is_feasible(inst in arb_instance()) {
        let sol = solve_greedy(&inst).unwrap();
        let recomputed = sol.validate(&inst).unwrap();
        prop_assert!((recomputed - sol.cost).abs() < 1e-9);
        // Every client is served by its cheapest open facility.
        for j in 0..inst.clients() {
            let assigned = inst.connect_cost(sol.assignment[j], j);
            for i in 0..inst.facilities() {
                if sol.open[i] {
                    prop_assert!(assigned <= inst.connect_cost(i, j) + 1e-12);
                }
            }
        }
    }

    #[test]
    fn heuristic_never_beats_exact(inst in arb_instance()) {
        let heur = solve(&inst).unwrap();
        let exact = solve_exact(&inst).unwrap();
        prop_assert!(heur.cost >= exact.cost - 1e-9);
        // And stays within a small constant factor on these instances.
        prop_assert!(
            heur.cost <= exact.cost * 1.7 + 1e-9,
            "heuristic {} vs exact {}", heur.cost, exact.cost
        );
    }

    #[test]
    fn local_search_never_worsens(inst in arb_instance()) {
        let greedy = solve_greedy(&inst).unwrap();
        let mut improved = greedy.clone();
        improve(&inst, &mut improved);
        prop_assert!(improved.cost <= greedy.cost + 1e-9);
        prop_assert!(improved.validate(&inst).is_ok());
    }

    #[test]
    fn exact_beats_every_single_facility_choice(inst in arb_instance()) {
        let exact = solve_exact(&inst).unwrap();
        for i in 0..inst.facilities() {
            let single = inst.open_cost(i)
                + (0..inst.clients()).map(|j| inst.connect_cost(i, j)).sum::<f64>();
            prop_assert!(exact.cost <= single + 1e-9);
        }
    }

    #[test]
    fn fdc_monotone_and_diverges(total in 1u64..10_000) {
        let mut prev = -1.0;
        for used in (0..total).step_by((total as usize / 17).max(1)) {
            let f = fdc(used, total);
            prop_assert!(f.is_finite());
            prop_assert!(f > prev);
            prev = f;
        }
        prop_assert!(fdc(total, total).is_infinite());
    }

    #[test]
    fn scaling_open_costs_reduces_facility_spend(inst in arb_instance()) {
        // Exchange argument: multiplying all opening costs by λ > 1 can
        // only reduce (or keep) the *unscaled facility spend* of the exact
        // optimum — the formal version of "a larger A stores less".
        let cheap = solve_exact(&inst).unwrap();
        let scaled = UflInstance::new(
            (0..inst.facilities()).map(|i| inst.open_cost(i) * 100.0).collect(),
            (0..inst.facilities())
                .map(|i| (0..inst.clients()).map(|j| inst.connect_cost(i, j)).collect())
                .collect(),
        );
        let pricey = solve_exact(&scaled).unwrap();
        let spend = |open: &[bool]| -> f64 {
            open.iter()
                .enumerate()
                .filter(|(_, &o)| o)
                .map(|(i, _)| inst.open_cost(i))
                .sum()
        };
        prop_assert!(
            spend(&pricey.open) <= spend(&cheap.open) + 1e-9,
            "facility spend grew: {} → {}",
            spend(&cheap.open),
            spend(&pricey.open)
        );
    }
}
