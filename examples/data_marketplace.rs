//! A sensing-data marketplace on the edge blockchain.
//!
//! The paper's motivating scenario (§I): IoT devices produce for-profit
//! sensing data ("sensing-as-a-service"); consumers pay tokens for access;
//! micro-payments and access records land in blocks, with no cloud or
//! trusted third party involved.
//!
//! This example drives the library's lower-level APIs directly — key
//! pairs, signed metadata, manual PoS rounds, block assembly, ledger
//! updates — to show what a marketplace application built on the crate
//! looks like, independent of the network simulator.
//!
//! Run with: `cargo run --release --example data_marketplace`

use edgechain::core::{
    run_round, Amendment, Block, Blockchain, Candidate, DataId, DataType, Identity, Location,
    MetadataItem, NodeStorage,
};
use edgechain::sim::NodeId;

/// Price of one sensing data item, in tokens.
const ITEM_PRICE: u64 = 1;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Five devices: two sensor producers, two consumers, one relay that
    // only contributes storage (and earns mining advantage for it).
    let devices: Vec<Identity> = (0..5).map(Identity::from_seed).collect();
    let names = [
        "air-sensor",
        "cam-sensor",
        "alice-phone",
        "bob-phone",
        "relay-box",
    ];
    let mut chain = Blockchain::new();
    let mut ledger = chain.derive_ledger();
    let mut stores: Vec<NodeStorage> = (0..5).map(|_| NodeStorage::new(50)).collect();
    // Consumers start with a purse for purchases.
    ledger.credit(devices[2].account(), 5);
    ledger.credit(devices[3].account(), 5);
    // The relay proactively stores lots of content → high Q_i.
    for i in 0..20 {
        stores[4].store_data(DataId(1000 + i));
    }

    let mut purchases: Vec<(usize, DataId)> = Vec::new();

    println!("=== edge data marketplace: 12 rounds, 60 s target interval ===\n");
    for round in 0..12u64 {
        // --- data production ---------------------------------------------
        let producer = (round % 2) as usize; // the two sensors alternate
        let data_id = DataId(round);
        let item = MetadataItem::new_signed(
            devices[producer].keys(),
            data_id,
            if producer == 0 {
                DataType::Sensing("PM2.5".into())
            } else {
                DataType::Media("Traffic".into())
            },
            round * 60,
            Location {
                label: "Stony Brook,NY".into(),
                x: 40.91,
                y: -73.12,
            },
            1440,
            Some(format!("round-{round}")),
            1_000_000,
        );
        assert!(item.verify(), "freshly signed metadata must verify");

        // --- micro-payment: a consumer buys access ------------------------
        let consumer = 2 + (round % 2) as usize;
        let paid = ledger.debit(devices[consumer].account(), ITEM_PRICE);
        if paid == ITEM_PRICE {
            ledger.credit(devices[producer].account(), ITEM_PRICE);
            purchases.push((consumer, data_id));
            println!(
                "round {round:>2}: {} buys {} from {} for {ITEM_PRICE} token",
                names[consumer], data_id, names[producer]
            );
        } else {
            println!("round {round:>2}: {} is broke — no sale", names[consumer]);
        }

        // --- PoS mining ----------------------------------------------------
        let candidates: Vec<Candidate> = devices
            .iter()
            .enumerate()
            .map(|(i, d)| Candidate {
                account: d.account(),
                tokens: ledger.balance(&d.account()),
                stored_items: stores[i].q_value(),
            })
            .collect();
        let outcome = run_round(&chain.tip().pos_hash, &candidates, 60);
        let us: Vec<u64> = candidates.iter().map(|c| c.contribution()).collect();
        let amendment = Amendment::compute(&us, 60);
        let mut packed = item;
        packed.storing_nodes = vec![NodeId(4)]; // relay stores the bytes
        stores[4].store_data(data_id);
        let block = Block::new(
            chain.height() + 1,
            chain.tip().hash,
            chain.tip().timestamp_secs + outcome.delay_secs,
            outcome.new_pos_hash,
            candidates[outcome.winner].account,
            outcome.delay_secs,
            amendment,
            vec![packed],
            vec![NodeId(4)],
            chain.tip().storing_nodes.clone(),
            vec![],
        );
        chain.push(block)?;
        ledger.credit(candidates[outcome.winner].account, 1);
        println!(
            "          block #{} mined by {} after {} s",
            chain.height(),
            names[outcome.winner],
            outcome.delay_secs
        );
    }

    // --- settlement report --------------------------------------------------
    println!("\n=== final state ===");
    for (i, d) in devices.iter().enumerate() {
        println!(
            "  {:<12} balance {:>2} tokens, {} blocks mined, {} items stored",
            names[i],
            ledger.balance(&d.account()),
            chain.blocks_mined_by(&d.account()),
            stores[i].data_count(),
        );
    }
    println!("  purchases completed: {}", purchases.len());
    let relay_blocks = chain.blocks_mined_by(&devices[4].account());
    println!(
        "\nthe storage-heavy relay mined {relay_blocks}/{} blocks — contribution\n\
         (tokens × stored items) buys mining advantage, as designed.",
        chain.height()
    );
    Ok(())
}
