//! Chain-lifecycle soak: a long seeded run with random node churn, one
//! Byzantine adversary, checkpoint-anchored pruning, and snapshot
//! bootstrap — the survival scenario the lifecycle subsystem exists for.
//!
//! Blocks below `checkpoint - retention` collapse into a signed anchor,
//! storage reclaims the pruned slots, and nodes rejoining from deep
//! downtime catch up via verified snapshots instead of block-by-block
//! recovery. The run must end with bounded retained state, at least one
//! snapshot bootstrap, every injected artifact detected, and zero
//! invariant violations.
//!
//! Telemetry is armed: the sim-clock trace goes to `$TRACE_OUT` (default
//! `soak_trace.jsonl`) and the registry dump to `$REGISTRY_OUT` (default
//! `soak_registry.json`). `$SOAK_MINUTES` overrides the horizon (default
//! 240 simulated minutes; the CI smoke job runs a shortened pass):
//!
//! ```text
//! cargo run --release --example soak
//! cargo run --release --bin trace-report -- soak_trace.jsonl
//! ```

use edgechain::core::{EdgeNetwork, NetworkConfig};
use edgechain::sim::{ByzantineAction, ChurnConfig, FaultEvent, FaultPlan, NodeId, SimTime};
use edgechain::telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let minutes: u64 = std::env::var("SOAK_MINUTES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(240);
    // SOAK_PRUNE=0 disables the lifecycle features for an A/B contrast
    // (watch peak storage grow with the chain instead of staying flat).
    let lifecycle = std::env::var("SOAK_PRUNE").map_or(true, |v| v != "0");
    let horizon_secs = minutes * 60;
    let nodes = 20;

    let churn = FaultPlan::random_churn(
        nodes,
        ChurnConfig {
            crashes_per_min: 0.05,
            mean_downtime_secs: 600.0,
            max_concurrent_down: 2,
            horizon: SimTime::from_secs(horizon_secs * 4 / 5),
        },
        &mut StdRng::seed_from_u64(0x50AC),
    );
    let adversary = FaultPlan::new(vec![
        FaultEvent::Byzantine {
            node: NodeId(19),
            action: ByzantineAction::Equivocate,
            at: SimTime::from_secs(horizon_secs / 10),
        },
        FaultEvent::Byzantine {
            node: NodeId(19),
            action: ByzantineAction::Withhold { blocks: 2 },
            at: SimTime::from_secs(horizon_secs / 4),
        },
        FaultEvent::Byzantine {
            node: NodeId(19),
            action: ByzantineAction::ForgeBlock,
            at: SimTime::from_secs(horizon_secs / 2),
        },
        FaultEvent::Byzantine {
            node: NodeId(19),
            action: ByzantineAction::GarbagePayload { bytes: 2_048 },
            at: SimTime::from_secs(horizon_secs * 3 / 5),
        },
    ]);
    let plan = churn.merged(adversary);
    plan.validate(nodes)?;
    println!("fault plan: {} events (seeded churn + 1 adversary)", {
        plan.events.len()
    });

    let config = NetworkConfig {
        nodes,
        sim_minutes: minutes,
        block_interval_secs: 6,
        data_items_per_min: 1.0,
        data_valid_minutes: 45,
        expiration_sweep_secs: 60,
        request_interval_secs: 120,
        prune_blocks: lifecycle,
        prune_retention_blocks: 32,
        snapshot_bootstrap: lifecycle,
        fetch_retries: 5,
        retry_backoff_ms: 4_000,
        seed: 0x50_AB,
        fault_plan: plan,
        ..NetworkConfig::default()
    };
    let retained_bound = config.checkpoint_interval.max(1) + config.prune_retention_blocks + 1;

    println!(
        "\nsoaking {minutes} simulated minutes with pruning + snapshots {}…\n",
        if lifecycle { "on" } else { "off" }
    );
    telemetry::enable();
    let report = EdgeNetwork::new(config)?.run();
    println!("{report}");

    let mut session = telemetry::finish().expect("telemetry was enabled");
    let trace_path = std::env::var("TRACE_OUT").unwrap_or_else(|_| "soak_trace.jsonl".to_string());
    let registry_path =
        std::env::var("REGISTRY_OUT").unwrap_or_else(|_| "soak_registry.json".to_string());
    std::fs::write(&trace_path, session.trace_jsonl())?;
    std::fs::write(&registry_path, session.registry.to_json())?;
    println!(
        "telemetry: {} trace events -> {trace_path}, registry -> {registry_path}",
        session.events().len()
    );

    println!("\nlifecycle digest:");
    println!("  blocks mined          : {}", report.blocks_mined);
    println!(
        "  blocks pruned         : {} ({} retained, bound {retained_bound})",
        report.blocks_pruned, report.retained_blocks
    );
    println!(
        "  snapshots             : {} served / {} applied / {} rejected",
        report.snapshots_served, report.snapshots_applied, report.snapshots_rejected
    );
    println!("  peak storage slots    : {}", report.peak_storage_slots);
    println!(
        "  byzantine             : {} injected / {} detected",
        report.byz_injected, report.byz_detected
    );
    println!(
        "  availability          : {:.3} ({} completed / {} failed)",
        report.availability, report.completed_requests, report.failed_requests
    );
    println!("  invariant violations  : {}", report.invariant_violations);

    if lifecycle {
        assert!(report.blocks_pruned > 0, "pruning never fired");
        assert!(
            report.retained_blocks <= retained_bound,
            "retained state exceeded the retention bound"
        );
        // Short horizons may not crash anyone long enough to fall below
        // the pruned base; only demand a bootstrap once churn has had two
        // sim-hours to produce a deep rejoiner.
        if minutes >= 120 {
            assert!(
                report.snapshots_applied >= 1,
                "no deep rejoiner bootstrapped from a snapshot"
            );
        }
    }
    assert_eq!(
        report.byz_detected, report.byz_injected,
        "an injected artifact went undetected"
    );
    assert_eq!(
        report.invariant_violations, 0,
        "honest nodes must stay prefix-consistent"
    );
    println!("\nretention bounded, snapshots verified, prefixes intact ✓");
    Ok(())
}
