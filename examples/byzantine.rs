//! Byzantine adversaries end to end: equivocation, forged PoS hits, a
//! withheld private fork, tampered metadata signatures, and garbage
//! payloads — against a 20-node network that also suffers crash churn
//! and link loss.
//!
//! Three nodes (15 %) turn adversarial on a fixed schedule. Honest nodes
//! verify every wire block, surface equivocation proofs, reorg through
//! the released fork under checkpoint rules, and quarantine + slash every
//! culprit. The run must end with **every** injected artifact detected
//! and zero invariant violations — and the same seed always reproduces
//! the identical report.
//!
//! Telemetry is armed: the sim-clock trace goes to `$TRACE_OUT` (default
//! `byz_trace.jsonl`) and the registry dump to `$REGISTRY_OUT` (default
//! `byz_registry.json`):
//!
//! ```text
//! cargo run --release --example byzantine
//! cargo run --release --bin trace-report -- byz_trace.jsonl
//! ```

use edgechain::core::{EdgeNetwork, NetworkConfig};
use edgechain::sim::{ByzantineAction, FaultEvent, FaultPlan, NodeId, SimTime};
use edgechain::telemetry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let plan = FaultPlan::new(vec![
        FaultEvent::Byzantine {
            node: NodeId(6),
            action: ByzantineAction::Equivocate,
            at: SimTime::from_secs(300),
        },
        FaultEvent::Byzantine {
            node: NodeId(6),
            action: ByzantineAction::Withhold { blocks: 2 },
            at: SimTime::from_secs(1_600),
        },
        FaultEvent::Byzantine {
            node: NodeId(15),
            action: ByzantineAction::TamperSignature,
            at: SimTime::from_secs(600),
        },
        FaultEvent::Byzantine {
            node: NodeId(15),
            action: ByzantineAction::GarbagePayload { bytes: 2_048 },
            at: SimTime::from_secs(1_200),
        },
        FaultEvent::Byzantine {
            node: NodeId(19),
            action: ByzantineAction::ForgeBlock,
            at: SimTime::from_secs(900),
        },
        FaultEvent::Crash {
            node: NodeId(3),
            at: SimTime::from_secs(800),
        },
        FaultEvent::Restart {
            node: NodeId(3),
            at: SimTime::from_secs(1_500),
        },
        FaultEvent::LinkLoss {
            prob: 0.05,
            from: SimTime::from_secs(120),
            until: SimTime::from_secs(3_000),
        },
    ]);
    plan.validate(20)?;
    println!("fault plan: {} events", plan.events.len());
    for ev in &plan.events {
        println!("  {ev:?}");
    }

    let config = NetworkConfig {
        nodes: 20,
        sim_minutes: 60,
        data_items_per_min: 2.0,
        request_interval_secs: 60,
        fetch_retries: 5,
        retry_backoff_ms: 4_000,
        fault_plan: plan,
        seed: 0xED6E,
        ..NetworkConfig::default()
    };

    println!("\nrunning 60 simulated minutes against three adversaries…\n");
    telemetry::enable();
    let report = EdgeNetwork::new(config)?.run();
    println!("{report}");

    let mut session = telemetry::finish().expect("telemetry was enabled");
    let trace_path = std::env::var("TRACE_OUT").unwrap_or_else(|_| "byz_trace.jsonl".to_string());
    let registry_path =
        std::env::var("REGISTRY_OUT").unwrap_or_else(|_| "byz_registry.json".to_string());
    std::fs::write(&trace_path, session.trace_jsonl())?;
    std::fs::write(&registry_path, session.registry.to_json())?;
    println!(
        "telemetry: {} trace events -> {trace_path}, registry -> {registry_path}",
        session.events().len()
    );

    println!("\nbyzantine digest:");
    println!("  artifacts injected    : {}", report.byz_injected);
    println!("  artifacts detected    : {}", report.byz_detected);
    println!(
        "  reorgs                : {} (max depth {})",
        report.reorgs, report.max_reorg_depth
    );
    println!("  quarantines           : {}", report.quarantine_events);
    println!("  readmissions          : {}", report.readmissions);
    println!(
        "  availability          : {:.3} ({} completed / {} failed)",
        report.availability, report.completed_requests, report.failed_requests
    );
    println!("  invariant violations  : {}", report.invariant_violations);
    assert_eq!(
        report.byz_detected, report.byz_injected,
        "an injected artifact went undetected"
    );
    assert_eq!(
        report.invariant_violations, 0,
        "honest nodes must stay prefix-consistent"
    );
    println!("\nevery artifact detected, honest prefixes intact ✓");
    Ok(())
}
