//! Vehicles selling road information to peers — placement strategy shootout.
//!
//! The paper's intro: "vehicles can sell road information directly to peer
//! vehicles in edge environments without a trusted cloud backend". Vehicles
//! move a lot, so the Range-Distance Cost matters: this example runs the
//! same vehicular workload under the paper's optimal (UFL) placement and
//! under random placement, and prints the Fig. 5-style comparison.
//!
//! Run with: `cargo run --release --example vehicular_network`

use edgechain::core::{EdgeNetwork, NetworkConfig, Placement};
use edgechain::sim::TopologyConfig;

fn vehicular_config(placement: Placement) -> NetworkConfig {
    NetworkConfig {
        nodes: 25,
        data_items_per_min: 2.0,
        sim_minutes: 120,
        // Vehicles: much larger mobility discs than the default handhelds.
        topology: TopologyConfig {
            mobility_range: 50.0,
            ..TopologyConfig::default()
        },
        mobility_interval_secs: 30,
        request_interval_secs: 120,
        placement,
        seed: 2024,
        ..NetworkConfig::default()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== vehicular road-information network (25 vehicles, 2 h) ===\n");

    let mut rows = Vec::new();
    for placement in [
        Placement::Optimal,
        Placement::Random,
        Placement::NoProactive,
    ] {
        let report = EdgeNetwork::new(vehicular_config(placement))?.run();
        println!("--- {placement} placement ---");
        println!("{report}\n");
        rows.push((placement, report));
    }

    let (_, opt) = &rows[0];
    let (_, rnd) = &rows[1];
    let (_, nop) = &rows[2];
    println!("=== comparison (Fig. 5 shape) ===");
    println!(
        "delivery time : optimal {:.2} s | random {:.2} s | no-proactive {:.2} s",
        opt.delivery.mean(),
        rnd.delivery.mean(),
        nop.delivery.mean(),
    );
    println!(
        "overhead/node : optimal {:.1} MB | random {:.1} MB | no-proactive {:.1} MB",
        opt.mean_node_overhead_mb, rnd.mean_node_overhead_mb, nop.mean_node_overhead_mb,
    );
    println!(
        "storage gini  : optimal {:.3} | random {:.3}",
        opt.storage_gini, rnd.storage_gini
    );
    println!(
        "\nvs no-proactive store, proactive optimal placement delivers {:+.0}% \
         ({}). Optimal vs random is a small effect at the paper's A = 1000 \
         (the fairness term dominates placement); the fairness win shows in \
         the gini column.",
        100.0 * (opt.delivery.mean() - nop.delivery.mean()) / nop.delivery.mean(),
        if opt.delivery.mean() < nop.delivery.mean() {
            "faster — the paper's claim"
        } else {
            "slower on this seed; fig5 averages more"
        },
    );
    Ok(())
}
