//! A flash crowd hits the network at ~5× sustainable capacity — and the
//! overload stack sheds, defers, and degrades instead of collapsing.
//!
//! The run drives the open-workload engine: a diurnal item-arrival
//! sinusoid around 12/min and open Poisson fetches at 30/min, both
//! multiplied ×5 for the ten minutes between t=10 min and t=20 min. Admission buckets, a bounded
//! mempool, per-node in-flight caps, and a global retry budget stand in
//! the way; the degradation ladder sheds low-priority fetches first, then
//! defers proactive replication, then repair sweeps — consensus is never
//! throttled.
//!
//! The digest at the end compares offered vs admitted vs shed traffic and
//! the p99 inclusion / fetch latency *before, during, and after* the
//! burst, computed from the causal-span trace. The trace lands in
//! `$TRACE_OUT` (default `flash_crowd_trace.jsonl`) and the registry in
//! `$REGISTRY_OUT` (default `flash_crowd_registry.json`):
//!
//! ```text
//! cargo run --release --example flash_crowd
//! cargo run --release --bin trace-report -- flash_crowd_trace.jsonl
//! ```

use edgechain::core::{EdgeNetwork, NetworkConfig};
use edgechain::prelude::{ArrivalProcess, Burst, OpenArrivals, OverloadConfig, WorkloadConfig};
use edgechain::telemetry::{self, Value};

/// Burst window, sim-clock seconds.
const BURST_FROM_SECS: f64 = 600.0;
const BURST_UNTIL_SECS: f64 = 1_200.0;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = NetworkConfig {
        nodes: 20,
        sim_minutes: 40,
        request_interval_secs: 60,
        // Retries back off 4 s, 8 s, … 64 s so a fetch can ride out a
        // mobility disconnection instead of failing immediately.
        fetch_retries: 5,
        retry_backoff_ms: 4_000,
        seed: 0xF1A5,
        workload: WorkloadConfig {
            enabled: true,
            arrivals: OpenArrivals {
                // A compressed "day": the rate swings 12 ± 40 % over the
                // 40-minute horizon, peaking as the burst hits.
                process: ArrivalProcess::Diurnal {
                    base_per_min: 12.0,
                    amplitude: 0.4,
                    period_secs: 2_400.0,
                    phase_secs: 0.0,
                },
                burst: Some(Burst {
                    multiplier: 5.0,
                    from_secs: BURST_FROM_SECS,
                    until_secs: BURST_UNTIL_SECS,
                }),
            },
            fetches: Some(OpenArrivals {
                process: ArrivalProcess::Poisson { rate_per_min: 30.0 },
                burst: Some(Burst {
                    multiplier: 5.0,
                    from_secs: BURST_FROM_SECS,
                    until_secs: BURST_UNTIL_SECS,
                }),
            }),
            zipf_exponent: 0.9,
        },
        overload: OverloadConfig {
            admission_items_per_min: Some(40.0),
            admission_fetches_per_min: Some(60.0),
            max_pending_items: Some(30),
            max_inflight_per_node: Some(8),
            retry_budget_per_min: Some(240.0),
            ..OverloadConfig::default()
        },
        ..NetworkConfig::default()
    };

    println!(
        "flash crowd: 20 nodes, 40 simulated minutes; diurnal items ~12/min, \
         fetches 30/min, ×5 burst in [{:.0} s, {:.0} s)…\n",
        BURST_FROM_SECS, BURST_UNTIL_SECS
    );
    telemetry::enable();
    telemetry::enable_spans();
    let report = EdgeNetwork::new(config)?.run();
    println!("{report}");

    let mut session = telemetry::finish().expect("telemetry was enabled");
    let trace_path =
        std::env::var("TRACE_OUT").unwrap_or_else(|_| "flash_crowd_trace.jsonl".to_string());
    let registry_path =
        std::env::var("REGISTRY_OUT").unwrap_or_else(|_| "flash_crowd_registry.json".to_string());
    std::fs::write(&trace_path, session.trace_jsonl())?;
    std::fs::write(&registry_path, session.registry.to_json())?;
    println!(
        "telemetry: {} trace events -> {trace_path}, registry -> {registry_path}",
        session.events().len()
    );

    let o = &report.overload;
    println!("\noverload digest:");
    println!(
        "  items   : {} offered = {} admitted + {} shed ({} rejected by allocation)",
        o.offered_items, o.admitted_items, o.shed_items, o.alloc_rejected
    );
    println!(
        "  fetches : {} offered = {} admitted + {} shed",
        o.offered_fetches, o.admitted_fetches, o.shed_fetches
    );
    println!(
        "  backpressure : {} retries denied, {} fetches exhausted at the horizon",
        o.retries_denied, o.fetch_exhausted
    );
    println!(
        "  degradation  : ladder peaked at L{}, {} replications deferred, {} repairs deferred",
        o.max_degrade_level, o.deferred_replications, o.deferred_repairs
    );
    println!(
        "  queues       : peak {} pending items (cap 30), peak {} in-flight fetches",
        o.peak_pending_items, o.peak_inflight_fetches
    );

    // p99 latency of the *admitted* traffic before / during / after the
    // burst, from the causal-span trace: `item.pend` spans cover
    // generation → block inclusion, `fetch.lifecycle` spans cover
    // request → delivery (successful outcomes only).
    println!("\ntail latency through the burst (admitted traffic only):");
    println!(
        "  {:<22}{:>14}{:>14}{:>14}",
        "", "before", "during", "after"
    );
    let windows = |kind: &str, ok: &dyn Fn(&str) -> bool| -> Vec<Option<f64>> {
        let mut buckets: Vec<Vec<f64>> = vec![Vec::new(), Vec::new(), Vec::new()];
        for ev in session.events() {
            if ev.kind != kind {
                continue;
            }
            let mut t0 = None;
            let mut dur = None;
            let mut outcome_ok = true;
            for (key, value) in &ev.fields {
                match (*key, value) {
                    ("t0_ms", Value::U64(v)) => t0 = Some(*v),
                    ("dur_ms", Value::U64(v)) => dur = Some(*v),
                    ("outcome", Value::Str(s)) => outcome_ok = ok(s),
                    _ => {}
                }
            }
            let (Some(t0), Some(dur)) = (t0, dur) else {
                continue;
            };
            if !outcome_ok {
                continue;
            }
            let t0_secs = t0 as f64 / 1_000.0;
            let w = if t0_secs < BURST_FROM_SECS {
                0
            } else if t0_secs < BURST_UNTIL_SECS {
                1
            } else {
                2
            };
            buckets[w].push(dur as f64 / 1_000.0);
        }
        buckets.into_iter().map(p99).collect()
    };
    let incl = windows("item.pend", &|_| true);
    let fetch = windows("fetch.lifecycle", &|s| s == "completed" || s == "local");
    print_window_row("p99 inclusion (s)", &incl);
    print_window_row("p99 fetch (s)", &fetch);

    println!(
        "\navailability {:.3} ({} completed / {} failed), {} blocks, {} invariant violations",
        report.availability,
        report.completed_requests,
        report.failed_requests,
        report.blocks_mined,
        report.invariant_violations
    );
    assert!(o.engaged(), "the burst must engage overload protection");
    assert_eq!(report.invariant_violations, 0, "no data may be lost");
    assert!(
        report.availability >= 0.9,
        "admitted traffic must stay available"
    );
    println!("\nshed visibly, degraded gracefully, admitted traffic stayed healthy ✓");
    Ok(())
}

fn p99(mut samples: Vec<f64>) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((samples.len() as f64) * 0.99).ceil() as usize;
    Some(samples[rank.saturating_sub(1).min(samples.len() - 1)])
}

fn print_window_row(label: &str, vals: &[Option<f64>]) {
    let fmt = |v: &Option<f64>| match v {
        Some(s) => format!("{s:.1}"),
        None => "-".to_string(),
    };
    println!(
        "  {:<22}{:>14}{:>14}{:>14}",
        label,
        fmt(&vals[0]),
        fmt(&vals[1]),
        fmt(&vals[2])
    );
}
