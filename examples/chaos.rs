//! Fault injection end to end: crash a node for good, partition the
//! network, lose messages — and watch the protocol repair itself.
//!
//! The run schedules a deterministic fault plan against a 20-node network:
//!
//! 1. node 4 crashes and restarts eight minutes later (its disk survives);
//! 2. node 13 crashes and never comes back — every replica it held must be
//!    re-created on surviving nodes by the miners' UFL repair sweep;
//! 3. a 5-minute partition splits five nodes from the rest;
//! 4. a long 5 % link-loss window stresses retry/backoff everywhere.
//!
//! The same seed + plan always reproduces the identical report, so chaos
//! runs are debuggable like any other deterministic simulation.
//!
//! Telemetry is armed for the run: the structured sim-clock trace is
//! written as JSONL to `$TRACE_OUT` (default `chaos_trace.jsonl`) and the
//! registry dump to `$REGISTRY_OUT` (default `chaos_registry.json`), ready
//! for `trace-report`:
//!
//! ```text
//! cargo run --release --example chaos
//! cargo run --release --bin trace-report -- chaos_trace.jsonl
//! ```

use edgechain::core::{EdgeNetwork, NetworkConfig};
use edgechain::sim::{FaultEvent, FaultPlan, NodeId, SimTime};
use edgechain::telemetry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let plan = FaultPlan::new(vec![
        FaultEvent::Crash {
            node: NodeId(4),
            at: SimTime::from_secs(600),
        },
        FaultEvent::Restart {
            node: NodeId(4),
            at: SimTime::from_secs(1_080),
        },
        FaultEvent::Crash {
            node: NodeId(13),
            at: SimTime::from_secs(1_000),
        },
        FaultEvent::Partition {
            cut: (0..5).map(NodeId).collect(),
            from: SimTime::from_secs(1_800),
            until: SimTime::from_secs(2_100),
        },
        FaultEvent::LinkLoss {
            prob: 0.05,
            from: SimTime::from_secs(120),
            until: SimTime::from_secs(3_500),
        },
    ]);
    plan.validate(20)?;
    println!("fault plan: {} events", plan.events.len());
    for ev in &plan.events {
        println!("  {ev:?}");
    }

    let config = NetworkConfig {
        nodes: 20,
        sim_minutes: 60,
        data_items_per_min: 2.0,
        request_interval_secs: 60,
        // Retries back off 4 s, 8 s, … so a request can ride out a
        // mobility disconnection instead of failing immediately.
        fetch_retries: 5,
        retry_backoff_ms: 4_000,
        // Replicate "general information" through raft too, so the trace
        // carries election/leader events alongside the PoS chain.
        raft_consensus: true,
        fault_plan: plan,
        seed: 0xC4A05,
        ..NetworkConfig::default()
    };

    println!("\nrunning 60 simulated minutes under the fault plan…\n");
    telemetry::enable();
    // Causal spans ride the trace: item/block/fetch lifecycles land in
    // $TRACE_OUT for `trace-report --critical-path` / `--item` / `--trace`.
    telemetry::enable_spans();
    let report = EdgeNetwork::new(config)?.run();
    println!("{report}");

    let mut session = telemetry::finish().expect("telemetry was enabled");
    let trace_path = std::env::var("TRACE_OUT").unwrap_or_else(|_| "chaos_trace.jsonl".to_string());
    let registry_path =
        std::env::var("REGISTRY_OUT").unwrap_or_else(|_| "chaos_registry.json".to_string());
    std::fs::write(&trace_path, session.trace_jsonl())?;
    std::fs::write(&registry_path, session.registry.to_json())?;
    println!(
        "telemetry: {} trace events -> {trace_path}, registry -> {registry_path}",
        session.events().len()
    );

    println!("\nchaos digest:");
    println!("  fault actions applied : {}", report.faults_injected);
    println!("  messages dropped      : {}", report.messages_dropped);
    println!("  retries (backoff)     : {}", report.retries);
    println!("  repair replications   : {}", report.repairs_triggered);
    println!(
        "  under-replicated time : {:.1} item-seconds",
        report.under_replicated_item_seconds
    );
    println!(
        "  availability          : {:.3} ({} completed / {} failed)",
        report.availability, report.completed_requests, report.failed_requests
    );
    println!("  invariant violations  : {}", report.invariant_violations);

    println!("\nslo digest:");
    println!("  inclusion latency     : {}", report.slo.inclusion);
    println!("  fetch latency         : {}", report.slo.fetch);
    println!("  slo breaches          : {}", report.slo.breaches);
    for alert in &report.slo.alerts {
        println!(
            "    breach @{:.0}s: {} = {:.3} (threshold {:.3})",
            alert.t_ms as f64 / 1000.0,
            alert.slo,
            alert.observed,
            alert.threshold
        );
    }
    assert_eq!(
        report.invariant_violations, 0,
        "no data may be lost for good"
    );
    println!("\nno durable data loss, chain prefixes intact ✓");
    Ok(())
}
