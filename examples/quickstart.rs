//! Quickstart: spin up an edge blockchain network and read the results.
//!
//! Runs a 10-node network for 30 simulated minutes with the paper's
//! default parameters (300 m × 300 m field, 70 m radio range, 60 s block
//! interval, 250-slot stores), then prints the run report and audits the
//! resulting chain.
//!
//! Run with: `cargo run --release --example quickstart`

use edgechain::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = NetworkConfig {
        nodes: 10,
        data_items_per_min: 2.0,
        sim_minutes: 30,
        verify_signatures: true,
        seed: 7,
        ..NetworkConfig::default()
    };
    println!(
        "starting {} nodes for {} simulated minutes…",
        config.nodes, config.sim_minutes
    );

    let network = edgechain::core::EdgeNetwork::new(config)?;
    let (report, chain) = network.run_with_chain();

    println!("\n=== run report ===\n{report}\n");

    // The chain is a first-class auditable object: re-validate it from
    // scratch, verify every producer signature, and derive token balances.
    let rebuilt = Blockchain::from_blocks(chain.as_slice().to_vec())?;
    for block in rebuilt.iter().skip(1) {
        Blockchain::verify_block_signatures(block)?;
    }
    println!(
        "chain re-validated: {} blocks, {} metadata items",
        rebuilt.len(),
        rebuilt.total_metadata_items()
    );

    let ledger = rebuilt.derive_ledger();
    println!("\nmining rewards (tokens above the initial grant):");
    let mut miners: Vec<(String, u64)> = ledger
        .iter()
        .map(|(acct, bal)| (acct.to_string(), bal.saturating_sub(1)))
        .collect();
    // Tie-break equal balances by account so the listing is deterministic
    // (ledger iteration order is per-process random).
    miners.sort_by_key(|m| (std::cmp::Reverse(m.1), m.0.clone()));
    for (acct, mined) in miners.iter().take(5) {
        println!("  {acct}…  {mined} blocks");
    }

    // A taste of the lower-level API: one manual PoS round.
    let candidates: Vec<Candidate> = (0..4)
        .map(|i| Candidate {
            account: Identity::from_seed(i).account(),
            tokens: i + 1,
            stored_items: 10,
        })
        .collect();
    let outcome = edgechain::core::run_round(&rebuilt.tip().pos_hash, &candidates, 60);
    println!(
        "\nnext manual PoS round: candidate {} wins after {} s (hit {:#x})",
        outcome.winner, outcome.delay_secs, outcome.hit
    );
    Ok(())
}
