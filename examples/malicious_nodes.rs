//! Malicious storing nodes: denial, invalidation, and routing around.
//!
//! Paper §III-B.2: "another malicious behavior is to deny storing or
//! offering data to the demanding user. … If a node requests data and does
//! not get any response, it then claims that the data is invalid. Everyone
//! will be informed of this information, and this data storage will be
//! marked as invalid. … Unless all replicas of this piece of data are
//! stored at malicious nodes, there will always be available data pieces."
//!
//! This example sweeps the malicious fraction and shows exactly that
//! behavior: denials rise, the invalidation blacklist bounds repeat
//! denials, and completion rates degrade gracefully because requesters
//! fall back to honest replicas and the producer's origin copy.
//!
//! Run with: `cargo run --release --example malicious_nodes`

use edgechain::core::{EdgeNetwork, NetworkConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== deny-of-service storers: 20 nodes, 90 min, 2 items/min ===\n");
    println!(
        "{:<12}{:>10}{:>12}{:>12}{:>14}{:>14}",
        "malicious", "denials", "completed", "failed", "success rate", "delivery [s]"
    );
    for pct in [0.0, 0.1, 0.2, 0.3, 0.5] {
        let cfg = NetworkConfig {
            nodes: 20,
            data_items_per_min: 2.0,
            sim_minutes: 90,
            request_interval_secs: 90,
            malicious_fraction: pct,
            seed: 31337,
            ..NetworkConfig::default()
        };
        let r = EdgeNetwork::new(cfg)?.run();
        let total = r.completed_requests + r.failed_requests;
        println!(
            "{:<12}{:>10}{:>12}{:>12}{:>13.1}%{:>14.3}",
            format!("{:.0}%", pct * 100.0),
            r.denials,
            r.completed_requests,
            r.failed_requests,
            100.0 * r.completed_requests as f64 / total.max(1) as f64,
            r.delivery.mean(),
        );
    }
    println!(
        "\neach denial publishes an invalidation, so a malicious storer is\n\
         asked at most once per data item; honest replicas and the producer\n\
         fallback keep the success rate high until most of the network is\n\
         malicious — the behavior §III-B.2 argues for."
    );
    Ok(())
}
