//! Disconnection, recent-block caching, and missing-block recovery.
//!
//! Mobility makes edge nodes fall off the network (paper §IV-C/§IV-D):
//! a node that reconnects sees a block whose index jumps past its own view
//! and fetches the gap from neighbors' recent-block caches. A brand-new
//! node bootstraps the whole chain by walking each block's
//! `prev_storing_nodes` pointer backwards.
//!
//! This example demonstrates both paths at the API level, then runs a
//! high-mobility network where recoveries actually fire.
//!
//! Run with: `cargo run --release --example disconnection_recovery`

use edgechain::core::{
    run_round, Amendment, Block, Blockchain, Candidate, EdgeNetwork, Identity, NetworkConfig,
    NodeStorage,
};
use edgechain::sim::{NodeId, TopologyConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---------------------------------------------------------------- 1 —
    // Build a 6-block chain by hand, with explicit storing-node pointers.
    let ids: Vec<Identity> = (0..4).map(Identity::from_seed).collect();
    let mut chain = Blockchain::new();
    let mut stores: Vec<NodeStorage> = (0..4).map(|_| NodeStorage::new(50)).collect();
    for s in &mut stores {
        s.cache_recent(0);
    }
    for round in 0..6u64 {
        let candidates: Vec<Candidate> = ids
            .iter()
            .enumerate()
            .map(|(i, d)| Candidate {
                account: d.account(),
                tokens: 1 + round,
                stored_items: stores[i].q_value(),
            })
            .collect();
        let outcome = run_round(&chain.tip().pos_hash, &candidates, 60);
        let us: Vec<u64> = candidates.iter().map(|c| c.contribution()).collect();
        // Block i is stored on node (i mod 4); everyone recent-caches it.
        let storer = NodeId(((chain.height() + 1) % 4) as usize);
        let block = Block::new(
            chain.height() + 1,
            chain.tip().hash,
            chain.tip().timestamp_secs + outcome.delay_secs,
            outcome.new_pos_hash,
            candidates[outcome.winner].account,
            outcome.delay_secs,
            Amendment::compute(&us, 60),
            vec![],
            vec![storer],
            chain.tip().storing_nodes.clone(),
            vec![],
        );
        stores[storer.0].store_block(block.index);
        for s in stores.iter_mut() {
            s.cache_recent(block.index);
        }
        chain.push(block)?;
    }
    println!("built a {}-block chain; block storers:", chain.len());
    for b in chain.iter() {
        println!(
            "  block #{:<2} stored at {:?}, previous block at {:?}",
            b.index, b.storing_nodes, b.prev_storing_nodes
        );
    }

    // ---------------------------------------------------------------- 2 —
    // Node A was disconnected and has only blocks 0..=3. It receives block
    // 6, detects the gap (index > height+1), and fetches 4, 5 from
    // whichever neighbor still has them (recent cache or assigned storage).
    let mut node_a_view: Vec<Block> = chain.as_slice()[..4].to_vec();
    let tip = chain.tip().clone();
    println!(
        "\nnode A holds blocks 0..=3 and now receives block #{}",
        tip.index
    );
    let missing: Vec<u64> = (4..tip.index).collect();
    println!("  gap detected → requesting blocks {missing:?} from neighbors");
    for idx in &missing {
        let holder = (0..4)
            .map(NodeId)
            .find(|n| stores[n.0].has_block(*idx))
            .expect("some neighbor caches the recent block");
        println!("  block #{idx} served by node {holder} (recent cache/assigned)");
        node_a_view.push(chain.get(*idx).unwrap().clone());
    }
    node_a_view.push(tip);
    let recovered = Blockchain::from_blocks(node_a_view)?;
    println!("  node A recovered: height {} ✓", recovered.height());

    // ---------------------------------------------------------------- 3 —
    // A brand-new node K bootstraps by walking prev_storing_nodes backwards
    // from the tip (paper Fig. 3).
    println!("\nnew node K bootstraps the chain backwards from the tip:");
    let mut cursor = chain.tip().clone();
    let mut fetched = vec![cursor.clone()];
    while cursor.index > 0 {
        let from = cursor.prev_storing_nodes.clone();
        let prev = chain.get(cursor.index - 1).unwrap().clone();
        println!("  fetched block #{} via pointer {:?}", prev.index, from);
        fetched.push(prev.clone());
        cursor = prev;
    }
    fetched.reverse();
    let bootstrapped = Blockchain::from_blocks(fetched)?;
    println!(
        "  node K validated the full chain: {} blocks ✓",
        bootstrapped.len()
    );

    // ---------------------------------------------------------------- 4 —
    // The same machinery firing inside the full simulation: crank mobility
    // up so partitions (and therefore recoveries) actually happen.
    println!("\nrunning a high-mobility network (recoveries expected)…");
    let report = EdgeNetwork::new(NetworkConfig {
        nodes: 15,
        sim_minutes: 90,
        data_items_per_min: 1.0,
        topology: TopologyConfig {
            mobility_range: 80.0, // chaotic: links churn every step
            ..TopologyConfig::default()
        },
        mobility_interval_secs: 30,
        seed: 99,
        ..NetworkConfig::default()
    })?
    .run();
    println!("{report}");
    println!(
        "\n{} missing-block recoveries, mean recovery latency {:.3} s",
        report.recoveries,
        report.recovery.mean()
    );
    Ok(())
}
