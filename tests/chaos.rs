//! Chaos test: the full network under a seeded fault plan combining node
//! churn, a partition, and lossy links — the robustness scenario the fault
//! injector exists for.
//!
//! The schedule throws at a 20-node network:
//! * two crashes, one of which never restarts (permanently lost node);
//! * a 5-minute partition splitting five nodes from the rest;
//! * a 5 % link-loss window covering most of the run.
//!
//! The network must keep serving requests (availability ≥ 0.9), repair the
//! replicas the dead node took down, never lose a data item for good, and
//! produce a bit-identical report when re-run with the same seed.

use edgechain::core::{EdgeNetwork, NetworkConfig};
use edgechain::sim::{ChurnConfig, FaultEvent, FaultPlan, NodeId, SimTime};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn chaos_plan() -> FaultPlan {
    FaultPlan::new(vec![
        FaultEvent::Crash {
            node: NodeId(4),
            at: SimTime::from_secs(600),
        },
        FaultEvent::Restart {
            node: NodeId(4),
            at: SimTime::from_secs(1_400),
        },
        // Node 13 dies for good: its replicas must be repaired elsewhere.
        FaultEvent::Crash {
            node: NodeId(13),
            at: SimTime::from_secs(1_000),
        },
        FaultEvent::Partition {
            cut: (0..5).map(NodeId).collect(),
            from: SimTime::from_secs(1_800),
            until: SimTime::from_secs(2_100), // 5 minutes
        },
        FaultEvent::LinkLoss {
            prob: 0.05,
            from: SimTime::from_secs(120),
            until: SimTime::from_secs(3_500),
        },
    ])
}

fn chaos_config() -> NetworkConfig {
    NetworkConfig {
        nodes: 20,
        sim_minutes: 60,
        data_items_per_min: 2.0,
        request_interval_secs: 60,
        seed: 0xC4A05,
        fault_plan: chaos_plan(),
        // Back off long enough to ride out a mobility disconnection or a
        // partition window: 4 s, 8 s, …, 64 s spans over two minutes.
        fetch_retries: 5,
        retry_backoff_ms: 4_000,
        ..NetworkConfig::default()
    }
}

#[test]
fn chaos_run_stays_available_and_safe() {
    let report = EdgeNetwork::new(chaos_config()).unwrap().run();
    // Every scheduled action fired: 3 node events + 2 windows × 2 edges.
    assert_eq!(report.faults_injected, 7, "{report}");
    assert!(
        report.messages_dropped > 0,
        "loss window never dropped anything"
    );
    assert!(report.retries > 0, "faults should exercise retry/backoff");
    assert!(
        report.repairs_triggered > 0,
        "the dead node's replicas must be repaired: {report}"
    );
    assert!(
        report.availability >= 0.9,
        "availability {} under chaos plan\n{report}",
        report.availability
    );
    assert_eq!(
        report.invariant_violations, 0,
        "no durable loss, no chain-prefix corruption: {report}"
    );
    assert!(report.blocks_mined > 20, "mining stalled: {report}");
}

#[test]
fn chaos_run_is_deterministic() {
    let a = EdgeNetwork::new(chaos_config()).unwrap().run();
    let b = EdgeNetwork::new(chaos_config()).unwrap().run();
    assert_eq!(a, b, "same seed + same fault plan must be bit-identical");
}

#[test]
fn chaos_seeds_differ() {
    // The fault plan is part of the configuration, not the seed: a
    // different master seed under the identical plan still yields a
    // different (but internally consistent) run.
    let a = EdgeNetwork::new(chaos_config()).unwrap().run();
    let cfg = NetworkConfig {
        seed: 0xC4A06,
        ..chaos_config()
    };
    let b = EdgeNetwork::new(cfg).unwrap().run();
    assert_ne!(a, b);
    assert_eq!(b.invariant_violations, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random churn schedules never cost the network a data item for good:
    /// as long as crashes only make disks unavailable (never wipe them)
    /// and at most `max_concurrent_down` of the 12 nodes are down at once,
    /// every valid item keeps at least one durable honest copy and every
    /// recovered chain stays a clean prefix.
    #[test]
    fn random_churn_never_violates_invariants(seed in 0u64..512) {
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = FaultPlan::random_churn(
            12,
            ChurnConfig {
                crashes_per_min: 0.4,
                mean_downtime_secs: 180.0,
                max_concurrent_down: 4,
                horizon: SimTime::from_secs(20 * 60),
            },
            &mut rng,
        );
        let cfg = NetworkConfig {
            nodes: 12,
            sim_minutes: 20,
            data_items_per_min: 2.0,
            request_interval_secs: 120,
            seed,
            fault_plan: plan,
            ..NetworkConfig::default()
        };
        let report = EdgeNetwork::new(cfg).unwrap().run();
        prop_assert_eq!(report.invariant_violations, 0);
        prop_assert!(report.blocks_mined > 0);
    }
}
