//! End-to-end integration tests: the full blockchain network simulation,
//! audited from the outside through the facade crate.

use edgechain::core::{Blockchain, EdgeNetwork, Identity, NetworkConfig};

fn base_config() -> NetworkConfig {
    NetworkConfig {
        nodes: 15,
        data_items_per_min: 2.0,
        sim_minutes: 40,
        request_interval_secs: 120,
        seed: 4242,
        ..NetworkConfig::default()
    }
}

#[test]
fn blocks_accumulate_near_expected_interval() {
    let report = EdgeNetwork::new(base_config()).unwrap().run();
    // 40 minutes at t0 = 60 s: roughly 40 blocks; allow wide tolerance for
    // the min-of-uniforms discretization and contribution heterogeneity.
    assert!(
        report.blocks_mined >= 20,
        "only {} blocks",
        report.blocks_mined
    );
    assert!(
        report.blocks_mined <= 90,
        "too many: {}",
        report.blocks_mined
    );
    assert!(
        report.mean_block_interval_secs > 20.0 && report.mean_block_interval_secs < 120.0,
        "interval {}",
        report.mean_block_interval_secs
    );
}

#[test]
fn final_chain_fully_validates_with_signatures() {
    let (report, chain) = EdgeNetwork::new(base_config()).unwrap().run_with_chain();
    assert!(report.blocks_mined > 0);
    let rebuilt = Blockchain::from_blocks(chain.as_slice().to_vec())
        .expect("chain must re-validate from raw blocks");
    for block in rebuilt.iter().skip(1) {
        Blockchain::verify_block_signatures(block).expect("all metadata signatures must verify");
        assert!(block.is_well_formed());
    }
    assert_eq!(rebuilt.height(), report.blocks_mined);
}

#[test]
fn ledger_matches_mining_history() {
    let cfg = base_config();
    let seed = cfg.seed;
    let nodes = cfg.nodes;
    let (report, chain) = EdgeNetwork::new(cfg).unwrap().run_with_chain();
    let ledger = chain.derive_ledger();
    let mut total_rewards = 0;
    for i in 0..nodes {
        let acct = Identity::from_seed(seed + i as u64).account();
        let mined = chain.blocks_mined_by(&acct);
        assert_eq!(ledger.balance(&acct), 1 + mined, "node {i}");
        total_rewards += mined;
    }
    assert_eq!(total_rewards, report.blocks_mined);
}

#[test]
fn storage_fairness_meets_paper_bound() {
    // The paper reports Gini < 0.15 across all §VI-A settings.
    let report = EdgeNetwork::new(base_config()).unwrap().run();
    assert!(
        report.storage_gini < 0.15,
        "storage gini {} ≥ 0.15",
        report.storage_gini
    );
}

#[test]
fn data_is_deliverable() {
    let report = EdgeNetwork::new(base_config()).unwrap().run();
    assert!(report.completed_requests > 0, "no request completed");
    // Paper Fig. 4(c): delivery stays within a few seconds.
    assert!(
        report.delivery.mean() < 5.0,
        "mean delivery {} s",
        report.delivery.mean()
    );
    assert!(report.delivery.max().unwrap() < 30.0);
}

#[test]
fn disconnected_nodes_recover_missing_blocks() {
    // High mobility forces partitions; recoveries must fire and succeed
    // quickly thanks to the recent-block caches.
    let cfg = NetworkConfig {
        topology: edgechain::sim::TopologyConfig {
            mobility_range: 80.0,
            ..Default::default()
        },
        mobility_interval_secs: 30,
        ..base_config()
    };
    let report = EdgeNetwork::new(cfg).unwrap().run();
    assert!(report.recoveries > 0, "no recovery happened under churn");
    assert!(
        report.recovery.mean() < 5.0,
        "recoveries too slow: {}",
        report.recovery.mean()
    );
}

#[test]
fn overhead_stays_bounded() {
    // Paper Fig. 4(a): per-node transfer volume stays modest (~≤120 MB over
    // 500 min); our shorter run must stay well under that.
    let report = EdgeNetwork::new(base_config()).unwrap().run();
    assert!(
        report.mean_node_overhead_mb < 120.0,
        "overhead {} MB",
        report.mean_node_overhead_mb
    );
    assert!(report.total_sent_mb > 0.0);
}

#[test]
fn identical_seeds_reproduce_identical_runs() {
    let a = EdgeNetwork::new(base_config()).unwrap().run();
    let b = EdgeNetwork::new(base_config()).unwrap().run();
    assert_eq!(a, b);
}

#[test]
fn contribution_weighting_skews_mining() {
    // Over a longer horizon the rich-get-richer dynamic of S_i·Q_i must
    // produce a non-uniform mining distribution.
    let cfg = NetworkConfig {
        sim_minutes: 90,
        ..base_config()
    };
    let seed = cfg.seed;
    let nodes = cfg.nodes;
    let (_, chain) = EdgeNetwork::new(cfg).unwrap().run_with_chain();
    let mut counts: Vec<u64> = (0..nodes)
        .map(|i| chain.blocks_mined_by(&Identity::from_seed(seed + i as u64).account()))
        .collect();
    counts.sort_unstable();
    let top = *counts.last().unwrap();
    let median = counts[nodes / 2];
    assert!(
        top >= median * 2,
        "expected skewed mining, got top {top} vs median {median}"
    );
}
