//! Integration tests for the raft substrate: general information consensus
//! over edge-style lossy networks, with safety checked continuously by the
//! cluster harness.

use edgechain::raft::{Cluster, ClusterConfig, PeerId, Role};

#[test]
fn membership_log_replicates_under_loss() {
    // The paper uses raft for "general information consensus"; replicate a
    // stream of membership events over a 20%-lossy network.
    let cfg = ClusterConfig {
        drop_rate: 0.2,
        ..ClusterConfig::default()
    };
    let mut cluster: Cluster<String> = Cluster::new(5, cfg, 77);
    cluster
        .run_until_leader(60_000)
        .expect("leader despite loss");
    let events = [
        "node-7 joined at (120.5, 80.2) range 30m",
        "node-3 moved, new range 50m",
        "node-7 left",
    ];
    for e in events {
        cluster.propose(e.to_string()).unwrap();
        cluster.run_millis(5_000);
    }
    cluster.run_millis(30_000);
    let expected: Vec<String> = events.iter().map(|s| s.to_string()).collect();
    assert!(
        cluster.all_committed(&expected),
        "log 0: {:?}",
        cluster.committed_log(PeerId(0))
    );
}

#[test]
fn leader_failover_preserves_committed_entries() {
    let mut cluster: Cluster<u64> = Cluster::new(5, ClusterConfig::default(), 5150);
    let first = cluster.run_until_leader(30_000).unwrap();
    cluster.propose(1).unwrap();
    cluster.run_millis(5_000);
    assert!(cluster.all_committed(&[1]));

    // Isolate the leader; the majority elects a successor.
    cluster.partition(&[first]);
    cluster.run_millis(10_000);
    let second = cluster.leader().expect("new leader on majority side");
    assert_ne!(first, second);
    cluster.propose(2).unwrap();
    cluster.run_millis(5_000);

    // Heal: the old leader catches up; nothing committed is lost.
    cluster.heal();
    cluster.run_millis(20_000);
    assert!(cluster.all_committed(&[1, 2]), "old leader must converge");
}

#[test]
fn heartbeat_overhead_is_the_dominant_idle_cost() {
    // The paper's conclusion singles out raft's heartbeat volume as future
    // work; quantify it: an idle cluster's traffic must be mostly
    // heartbeats.
    let mut cluster: Cluster<u8> = Cluster::new(3, ClusterConfig::default(), 9);
    cluster.run_until_leader(30_000).unwrap();
    cluster.run_millis(120_000);
    let counts = cluster.message_counts();
    let hb_share = counts.heartbeats as f64 / counts.total() as f64;
    assert!(
        hb_share > 0.4,
        "heartbeats {:.0}% of {} messages",
        hb_share * 100.0,
        counts.total()
    );
}

#[test]
fn seven_node_cluster_converges() {
    let mut cluster: Cluster<u32> = Cluster::new(7, ClusterConfig::default(), 31);
    cluster.run_until_leader(30_000).unwrap();
    for i in 0..20 {
        cluster.propose(i).unwrap();
        cluster.run_millis(1_000);
    }
    cluster.run_millis(20_000);
    let expected: Vec<u32> = (0..20).collect();
    assert!(cluster.all_committed(&expected));
    // Exactly one leader at the end.
    let leaders = (0..7)
        .filter(|&i| cluster.node(PeerId(i)).role() == Role::Leader)
        .count();
    assert_eq!(leaders, 1);
}
