//! Long-horizon soak: a multi-sim-hour seeded run with random node churn,
//! one Byzantine adversary, and checkpoint-anchored pruning + snapshot
//! bootstrap enabled — the chain-lifecycle subsystem's survival test.
//!
//! The run must mine ≥ 10⁴ blocks while holding retained chain state
//! bounded by the retention window (not O(height)), keep peak storage
//! occupancy flat as the horizon doubles, bootstrap deep rejoiners from
//! verified snapshots, stay ≥ 0.9 available, break zero invariants, and
//! replay bit-identically per seed. A run whose retention horizon exceeds
//! the simulation length must be indistinguishable from pruning off.

use edgechain::core::{EdgeNetwork, NetworkConfig, RunReport};
use edgechain::sim::{ByzantineAction, ChurnConfig, FaultEvent, FaultPlan, NodeId, SimTime};
use rand::rngs::StdRng;
use rand::SeedableRng;

// 20 nodes matches the density the chaos availability plan runs at; the
// default 300 m × 300 m field is too sparse for ≥ 0.9 reachability with
// fewer radios.
const NODES: usize = 20;

/// Seeded churn across the whole run plus one repeat-offender Byzantine
/// adversary (node 19), composed via [`FaultPlan::merged`].
fn soak_plan(horizon_secs: u64) -> FaultPlan {
    let churn = FaultPlan::random_churn(
        NODES,
        ChurnConfig {
            crashes_per_min: 0.05,
            mean_downtime_secs: 600.0,
            max_concurrent_down: 2,
            horizon: SimTime::from_secs(horizon_secs * 4 / 5),
        },
        &mut StdRng::seed_from_u64(0x50AC),
    );
    let adversary = FaultPlan::new(vec![
        FaultEvent::Byzantine {
            node: NodeId(19),
            action: ByzantineAction::Equivocate,
            at: SimTime::from_secs(horizon_secs / 10),
        },
        FaultEvent::Byzantine {
            node: NodeId(19),
            action: ByzantineAction::Withhold { blocks: 2 },
            at: SimTime::from_secs(horizon_secs / 4),
        },
        FaultEvent::Byzantine {
            node: NodeId(19),
            action: ByzantineAction::ForgeBlock,
            at: SimTime::from_secs(horizon_secs / 2),
        },
        FaultEvent::Byzantine {
            node: NodeId(19),
            action: ByzantineAction::GarbagePayload { bytes: 2_048 },
            at: SimTime::from_secs(horizon_secs * 3 / 5),
        },
    ]);
    churn.merged(adversary)
}

/// A 6-second block target packs ≥ 10⁴ blocks into `minutes` ≥ 1000;
/// short-lived data keeps the registry (and the expiry heap) churning.
fn soak_config(minutes: u64) -> NetworkConfig {
    NetworkConfig {
        nodes: NODES,
        sim_minutes: minutes,
        block_interval_secs: 6,
        data_items_per_min: 1.0,
        data_valid_minutes: 45,
        expiration_sweep_secs: 60,
        request_interval_secs: 120,
        prune_blocks: true,
        prune_retention_blocks: 32,
        snapshot_bootstrap: true,
        fetch_retries: 5,
        retry_backoff_ms: 4_000,
        seed: 0x50_AB,
        fault_plan: soak_plan(minutes * 60),
        ..NetworkConfig::default()
    }
}

fn run(config: NetworkConfig) -> RunReport {
    EdgeNetwork::new(config).expect("valid config").run()
}

#[test]
fn soak_survives_churn_adversary_and_pruning() {
    let config = soak_config(1_100);
    let retained_bound = config.checkpoint_interval.max(1) + config.prune_retention_blocks + 1;
    let report = run(config);

    assert!(
        report.blocks_mined >= 10_000,
        "soak horizon too short: {} blocks",
        report.blocks_mined
    );
    // Retained state is bounded by the retention window, not the height.
    assert!(report.blocks_pruned > 0, "pruning never fired: {report}");
    assert!(
        report.retained_blocks <= retained_bound,
        "retained {} blocks > bound {retained_bound}: {report}",
        report.retained_blocks
    );
    // Deep rejoiners (600 s mean downtime vs a ~3.5-minute retention
    // horizon) had to bootstrap from snapshots, and every tampered or
    // stale snapshot was turned away before adoption.
    assert!(
        report.snapshots_applied >= 1,
        "no snapshot bootstrap in a churning pruned run: {report}"
    );
    // Safety under the composed adversary: nothing finalized was lost,
    // resurrected, or detached from its anchor commitment.
    assert_eq!(report.invariant_violations, 0, "invariant broken: {report}");
    assert_eq!(
        report.byz_detected, report.byz_injected,
        "an injected artifact went undetected: {report}"
    );
    assert!(
        report.availability >= 0.9,
        "availability {} dropped below 0.9: {report}",
        report.availability
    );
    // The expiry machinery kept cycling short-lived data out.
    assert!(report.data_expired > 0, "nothing expired in {report}");
}

#[test]
fn soak_reruns_are_bit_identical() {
    let a = run(soak_config(1_100));
    let b = run(soak_config(1_100));
    assert_eq!(a, b, "same seed + plan must reproduce the identical report");
}

#[test]
fn peak_storage_stays_flat_as_the_horizon_doubles() {
    // With pruning reclaiming block storage and expiry reclaiming data
    // slots, occupancy plateaus after warmup: doubling the horizon must
    // not grow the peak meaningfully (an O(height) chain would).
    let half = run(soak_config(550));
    let full = run(soak_config(1_100));
    assert!(half.peak_storage_slots > 0);
    assert!(
        full.peak_storage_slots <= half.peak_storage_slots * 5 / 4,
        "peak storage grew with the horizon: {} at half vs {} at full",
        half.peak_storage_slots,
        full.peak_storage_slots
    );
}

#[test]
fn pruning_below_the_horizon_matches_pruning_off() {
    // Same seeded churn + adversary, 60 minutes: with the retention
    // window longer than the run, the lifecycle machinery must be
    // invisible — reports bit-identical to pruning disabled.
    let base = NetworkConfig {
        prune_blocks: false,
        snapshot_bootstrap: false,
        ..soak_config(60)
    };
    let lifecycle_armed = NetworkConfig {
        prune_retention_blocks: 100_000,
        ..soak_config(60)
    };
    let off = run(base);
    let armed = run(lifecycle_armed);
    assert_eq!(off, armed, "dormant lifecycle features perturbed the run");
    assert_eq!(armed.blocks_pruned, 0);
    assert_eq!(armed.snapshots_served, 0);
}
