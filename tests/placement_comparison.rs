//! Integration test for the Fig. 5 claim: the optimal placement delivers
//! data faster than storing nothing proactively, at bounded extra
//! overhead, and fairer than random placement.

use edgechain::core::{EdgeNetwork, NetworkConfig, Placement};

fn run_avg(placement: Placement, seeds: &[u64]) -> (f64, f64, f64) {
    let mut delivery = 0.0;
    let mut overhead = 0.0;
    let mut gini = 0.0;
    for &seed in seeds {
        let cfg = NetworkConfig {
            nodes: 25,
            data_items_per_min: 1.0,
            sim_minutes: 60,
            request_interval_secs: 90,
            placement,
            seed,
            ..NetworkConfig::default()
        };
        let r = EdgeNetwork::new(cfg).unwrap().run();
        delivery += r.delivery.mean();
        overhead += r.mean_node_overhead_mb;
        gini += r.storage_gini;
    }
    let n = seeds.len() as f64;
    (delivery / n, overhead / n, gini / n)
}

#[test]
fn optimal_beats_no_proactive_on_delivery() {
    let seeds = [1u64, 2, 3];
    let (opt_delivery, _, _) = run_avg(Placement::Optimal, &seeds);
    let (nop_delivery, _, _) = run_avg(Placement::NoProactive, &seeds);
    assert!(
        opt_delivery < nop_delivery,
        "optimal {opt_delivery:.3}s should beat no-proactive {nop_delivery:.3}s"
    );
}

#[test]
fn optimal_overhead_comparable_to_random() {
    // Paper Fig. 5(b): "the message overhead is almost the same between two
    // different strategies". Allow a generous 50% band.
    let seeds = [4u64, 5, 6];
    let (_, opt_overhead, _) = run_avg(Placement::Optimal, &seeds);
    let (_, rnd_overhead, _) = run_avg(Placement::Random, &seeds);
    let ratio = opt_overhead / rnd_overhead;
    assert!(
        (0.5..=1.5).contains(&ratio),
        "overhead ratio {ratio:.2} (optimal {opt_overhead:.1} MB vs random {rnd_overhead:.1} MB)"
    );
}

#[test]
fn optimal_is_fairer_than_random() {
    let seeds = [7u64, 8, 9];
    let (_, _, opt_gini) = run_avg(Placement::Optimal, &seeds);
    let (_, _, rnd_gini) = run_avg(Placement::Random, &seeds);
    assert!(
        opt_gini <= rnd_gini + 0.02,
        "optimal gini {opt_gini:.3} should not exceed random {rnd_gini:.3}"
    );
}
