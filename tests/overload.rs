//! Overload robustness: the open-workload engine driving a flash crowd at
//! ~5× sustainable capacity against the admission/backpressure stack.
//!
//! The scenarios here check the contract of the degradation ladder: under
//! overload the network *sheds visibly* (counters, never silence), keeps
//! the admitted traffic healthy (availability ≥ 0.9, zero invariant
//! violations), bounds its queues, and replays bit-identically per seed.
//! A dormant-workload run must stay byte-identical to the closed-loop
//! baseline — the whole engine rides behind inert defaults.

use edgechain::core::{
    ArrivalProcess, Burst, EdgeNetwork, NetworkConfig, OpenArrivals, OverloadConfig, WorkloadConfig,
};
use edgechain::sim::{FaultEvent, FaultPlan, SimTime};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A zero-probability loss window: injects no faults but flips the run
/// into "fault mode", so the invariant checker actually meters it.
fn metered_plan(minutes: u64) -> FaultPlan {
    FaultPlan::new(vec![FaultEvent::LinkLoss {
        prob: 0.0,
        from: SimTime::from_secs(1),
        until: SimTime::from_secs(minutes * 60 - 60),
    }])
}

/// Flash crowd: base item arrivals at 12/min burst 5× for ten minutes,
/// open fetches at 30/min burst 5×, against a 40/min admission bucket and
/// a 30-item mempool bound — deep enough into overload that every rung of
/// the ladder engages.
fn flash_crowd_config() -> NetworkConfig {
    NetworkConfig {
        nodes: 20,
        sim_minutes: 40,
        request_interval_secs: 60,
        seed: 0xF1A5,
        // Ride out mobility disconnections like the chaos suite does:
        // 4 s, 8 s, …, 64 s spans over two minutes of backoff.
        fetch_retries: 5,
        retry_backoff_ms: 4_000,
        fault_plan: metered_plan(40),
        workload: WorkloadConfig {
            enabled: true,
            arrivals: OpenArrivals {
                process: ArrivalProcess::Poisson { rate_per_min: 12.0 },
                burst: Some(Burst {
                    multiplier: 5.0,
                    from_secs: 600.0,
                    until_secs: 1_200.0,
                }),
            },
            fetches: Some(OpenArrivals {
                process: ArrivalProcess::Poisson { rate_per_min: 30.0 },
                burst: Some(Burst {
                    multiplier: 5.0,
                    from_secs: 600.0,
                    until_secs: 1_200.0,
                }),
            }),
            zipf_exponent: 0.9,
        },
        overload: OverloadConfig {
            admission_items_per_min: Some(40.0),
            admission_fetches_per_min: Some(60.0),
            max_pending_items: Some(30),
            max_inflight_per_node: Some(8),
            // Generous budget: bounds a retry storm without failing the
            // routine mobility-disconnect retries that must succeed.
            retry_budget_per_min: Some(240.0),
            ..OverloadConfig::default()
        },
        ..NetworkConfig::default()
    }
}

#[test]
fn flash_crowd_sheds_load_but_stays_healthy() {
    let report = EdgeNetwork::new(flash_crowd_config()).unwrap().run();
    let o = &report.overload;
    // Protection engaged, visibly: both shed paths and the ladder fired.
    assert!(o.engaged(), "overload protection never engaged: {report}");
    assert!(o.shed_items > 0, "item shedding never fired: {o}");
    assert!(o.shed_fetches > 0, "fetch shedding never fired: {o}");
    assert!(
        o.max_degrade_level >= 1,
        "ladder never engaged: level {}",
        o.max_degrade_level
    );
    assert!(
        o.deferred_replications + o.deferred_repairs > 0,
        "graceful degradation never deferred anything: {o}"
    );
    // Queues stay bounded by the configured cap.
    assert!(
        o.peak_pending_items <= 30,
        "pending queue exceeded its bound: {}",
        o.peak_pending_items
    );
    // Offered > admitted during the burst; everything accounted.
    assert!(o.offered_items > o.admitted_items, "{o}");
    assert_eq!(o.offered_items, o.admitted_items + o.shed_items, "{o}");
    // The admitted traffic stays healthy: consensus alive, no invariant
    // violations, availability of admitted requests ≥ 0.9.
    assert!(report.blocks_mined > 20, "mining throttled: {report}");
    assert_eq!(report.invariant_violations, 0, "{report}");
    assert!(
        report.availability >= 0.9,
        "admitted availability {} under flash crowd\n{report}",
        report.availability
    );
    assert!(report.completed_requests > 0, "{report}");
}

#[test]
fn flash_crowd_is_bit_identical_per_seed() {
    let a = EdgeNetwork::new(flash_crowd_config()).unwrap().run();
    let b = EdgeNetwork::new(flash_crowd_config()).unwrap().run();
    assert_eq!(a, b, "overloaded runs must replay bit-identically");
    let c = EdgeNetwork::new(NetworkConfig {
        seed: 0xF1A6,
        ..flash_crowd_config()
    })
    .unwrap()
    .run();
    assert_ne!(a, c, "different seeds must differ");
    assert_eq!(c.invariant_violations, 0);
}

#[test]
fn workload_off_is_bit_identical_to_baseline() {
    let base = || NetworkConfig {
        nodes: 12,
        sim_minutes: 30,
        data_items_per_min: 2.0,
        seed: 11,
        ..NetworkConfig::default()
    };
    let baseline = EdgeNetwork::new(base()).unwrap().run();
    // A disabled workload section — even with aggressive parameters behind
    // the off switch — must not perturb a single byte of the run.
    let dormant = NetworkConfig {
        workload: WorkloadConfig {
            enabled: false,
            arrivals: OpenArrivals::poisson(500.0),
            fetches: Some(OpenArrivals::poisson(500.0)),
            zipf_exponent: 2.5,
        },
        overload: OverloadConfig::default(),
        retry_backoff_max_ms: 600_000,
        retry_jitter_ms: 0,
        ..base()
    };
    let report = EdgeNetwork::new(dormant).unwrap().run();
    assert_eq!(baseline, report, "dormant workload changed the run");
    // Default runs admit everything and never engage protection.
    assert!(!report.overload.engaged());
    assert_eq!(
        report.overload.offered_items,
        report.overload.admitted_items
    );
    assert_eq!(report.overload.shed_fetches, 0);
}

#[test]
fn capped_jittered_backoff_is_deterministic() {
    // A long lossy window forces real retry/backoff traffic; the cap and
    // the jitter stream must keep the run replayable and safe.
    let cfg = || NetworkConfig {
        nodes: 12,
        sim_minutes: 20,
        data_items_per_min: 2.0,
        request_interval_secs: 60,
        seed: 0xBACC,
        fetch_retries: 6,
        retry_backoff_ms: 2_000,
        retry_backoff_max_ms: 8_000,
        retry_jitter_ms: 1_000,
        fault_plan: FaultPlan::new(vec![FaultEvent::LinkLoss {
            prob: 0.3,
            from: SimTime::from_secs(60),
            until: SimTime::from_secs(18 * 60),
        }]),
        ..NetworkConfig::default()
    };
    let a = EdgeNetwork::new(cfg()).unwrap().run();
    let b = EdgeNetwork::new(cfg()).unwrap().run();
    assert_eq!(
        a, b,
        "jittered backoff must come from its own seeded stream"
    );
    assert!(a.retries > 0, "loss window should exercise retries: {a}");
    assert_eq!(a.invariant_violations, 0, "{a}");
    // Jitter actually perturbs timing relative to the no-jitter run.
    let no_jitter = EdgeNetwork::new(NetworkConfig {
        retry_jitter_ms: 0,
        ..cfg()
    })
    .unwrap()
    .run();
    assert_ne!(a, no_jitter, "jitter had no observable effect");
}

#[test]
fn stranded_fetches_fail_explicitly_at_horizon() {
    // Total blackout from minute 5 onward plus a backoff that reaches past
    // the horizon: every fetch caught mid-backoff must resolve as an
    // explicit exhausted failure, never stay silently in flight.
    let cfg = || NetworkConfig {
        nodes: 12,
        sim_minutes: 20,
        data_items_per_min: 2.0,
        request_interval_secs: 60,
        seed: 0x5714,
        fetch_retries: 3,
        retry_backoff_ms: 600_000, // 10 min: first retry lands past t=15min
        fault_plan: FaultPlan::new(vec![FaultEvent::LinkLoss {
            prob: 1.0,
            from: SimTime::from_secs(300),
            until: SimTime::from_secs(20 * 60),
        }]),
        ..NetworkConfig::default()
    };
    let report = EdgeNetwork::new(cfg()).unwrap().run();
    assert!(
        report.overload.fetch_exhausted > 0,
        "blackout should strand fetches in backoff: {report}"
    );
    assert!(report.failed_requests >= report.overload.fetch_exhausted);
    let again = EdgeNetwork::new(cfg()).unwrap().run();
    assert_eq!(report, again, "horizon drain must be deterministic");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any arrival shape replays the identical stream for the identical
    /// seed, and different seeds diverge.
    #[test]
    fn arrival_streams_are_deterministic_per_seed(
        seed in 0u64..10_000,
        base in 1.0f64..120.0,
        amplitude in 0.0f64..1.0,
        period in 60.0f64..3_600.0,
        mult in 1.0f64..10.0,
    ) {
        let arrivals = OpenArrivals {
            process: ArrivalProcess::Diurnal {
                base_per_min: base,
                amplitude,
                period_secs: period,
                phase_secs: 0.0,
            },
            burst: Some(Burst {
                multiplier: mult,
                from_secs: 100.0,
                until_secs: 400.0,
            }),
        };
        let stream = |s: u64| -> Vec<u64> {
            let mut rng = StdRng::seed_from_u64(s);
            let mut t = 0.0;
            (0..64)
                .map(|_| {
                    t = arrivals.next_arrival_secs(t, &mut rng);
                    (t * 1_000.0) as u64
                })
                .collect()
        };
        prop_assert_eq!(stream(seed), stream(seed));
        prop_assert_ne!(stream(seed), stream(seed.wrapping_add(1)));
    }

    /// The workload-off pin holds across seeds, not just the one the unit
    /// test happens to use.
    #[test]
    fn workload_off_pin_holds_across_seeds(seed in 0u64..64) {
        let base = NetworkConfig {
            nodes: 10,
            sim_minutes: 10,
            data_items_per_min: 2.0,
            seed,
            ..NetworkConfig::default()
        };
        let dormant = NetworkConfig {
            workload: WorkloadConfig {
                enabled: false,
                arrivals: OpenArrivals::poisson(240.0),
                fetches: Some(OpenArrivals::poisson(240.0)),
                zipf_exponent: 1.5,
            },
            ..base.clone()
        };
        let a = EdgeNetwork::new(base).unwrap().run();
        let b = EdgeNetwork::new(dormant).unwrap().run();
        prop_assert_eq!(a, b);
    }
}
