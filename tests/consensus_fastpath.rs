//! Consensus & propagation fast-path equivalence: the cached PoS hit
//! table (`pos_hit_cache: true`, the default) and the seal-time block
//! caches (`block_seal_cache: true`) must be observationally identical to
//! the uncached reference paths — same `RunReport`, same mined chain,
//! byte-identical telemetry traces — across figure-sized runs, the
//! Random-placement baseline, and a chaos run that exercises crashes,
//! block recovery (the per-recovery re-encode path), and lossy broadcast.

use edgechain::core::{EdgeNetwork, NetworkConfig, Placement, RunReport};
use edgechain::sim::{FaultEvent, FaultPlan, NodeId, SimTime};
use edgechain::telemetry;

fn run(cfg: NetworkConfig) -> RunReport {
    EdgeNetwork::new(cfg).expect("valid config").run()
}

/// Fig. 4-sized cell: 30 nodes, 2 items/min, 40 simulated minutes.
fn fig4_config() -> NetworkConfig {
    NetworkConfig {
        nodes: 30,
        data_items_per_min: 2.0,
        sim_minutes: 40,
        seed: 0xFA57_0004,
        ..NetworkConfig::default()
    }
}

/// Fig. 5-sized cell under the Random baseline — the placement that
/// draws from the run's rng, so any extra/missing draw on the fast paths
/// (neither consumes rng) would cascade into a visibly different run.
fn fig5_random_config() -> NetworkConfig {
    NetworkConfig {
        nodes: 20,
        data_items_per_min: 2.0,
        sim_minutes: 40,
        placement: Placement::Random,
        seed: 0xFA57_0005,
        ..NetworkConfig::default()
    }
}

/// Chaos run: crashes (dropping candidates out of PoS rounds mid-height),
/// a restart, and a lossy window (per-reception broadcast loss draws plus
/// block recovery, which serves chain blocks over unicast).
fn chaos_config() -> NetworkConfig {
    NetworkConfig {
        nodes: 20,
        data_items_per_min: 2.0,
        sim_minutes: 25,
        request_interval_secs: 60,
        fault_plan: FaultPlan::new(vec![
            FaultEvent::Crash {
                node: NodeId(3),
                at: SimTime::from_secs(500),
            },
            FaultEvent::Restart {
                node: NodeId(3),
                at: SimTime::from_secs(900),
            },
            FaultEvent::Crash {
                node: NodeId(11),
                at: SimTime::from_secs(650),
            },
            FaultEvent::LinkLoss {
                prob: 0.05,
                from: SimTime::from_secs(200),
                until: SimTime::from_secs(1_000),
            },
        ]),
        seed: 0xFA57_C405,
        ..NetworkConfig::default()
    }
}

/// Same config, both consensus caches on vs off, telemetry disarmed
/// (hit/encode counters legitimately differ between the paths): the full
/// reports must be equal — every winner, delay, rng draw, and transport
/// byte included.
fn assert_paths_equivalent(label: &str, cfg: NetworkConfig) {
    let fast = run(NetworkConfig {
        pos_hit_cache: true,
        block_seal_cache: true,
        ..cfg.clone()
    });
    let baseline = run(NetworkConfig {
        pos_hit_cache: false,
        block_seal_cache: false,
        ..cfg
    });
    assert!(fast.telemetry.is_none() && baseline.telemetry.is_none());
    assert_eq!(fast, baseline, "{label}: consensus fast path diverged");
}

#[test]
fn fig4_sized_run_is_equivalent() {
    assert_paths_equivalent("fig4", fig4_config());
}

#[test]
fn fig5_random_placement_is_equivalent() {
    assert_paths_equivalent("fig5-random", fig5_random_config());
}

#[test]
fn chaos_run_is_equivalent() {
    assert_paths_equivalent("chaos", chaos_config());
}

/// Flipping each cache on its own must also be invisible — the two fast
/// paths are independent and neither may lean on the other for
/// equivalence.
#[test]
fn each_cache_is_independently_equivalent() {
    let reference = run(NetworkConfig {
        pos_hit_cache: false,
        block_seal_cache: false,
        ..fig4_config()
    });
    let pos_only = run(NetworkConfig {
        pos_hit_cache: true,
        block_seal_cache: false,
        ..fig4_config()
    });
    let seal_only = run(NetworkConfig {
        pos_hit_cache: false,
        block_seal_cache: true,
        ..fig4_config()
    });
    assert_eq!(pos_only, reference, "pos_hit_cache alone diverged");
    assert_eq!(seal_only, reference, "block_seal_cache alone diverged");
}

/// The mined chains themselves must be identical block for block, not
/// just the aggregate report.
#[test]
fn chains_are_identical_across_paths() {
    let (_, fast) = EdgeNetwork::new(NetworkConfig {
        pos_hit_cache: true,
        block_seal_cache: true,
        ..fig4_config()
    })
    .expect("valid config")
    .run_with_chain();
    let (_, base) = EdgeNetwork::new(NetworkConfig {
        pos_hit_cache: false,
        block_seal_cache: false,
        ..fig4_config()
    })
    .expect("valid config")
    .run_with_chain();
    assert!(fast.height() > 0, "the run must mine blocks");
    assert_eq!(fast, base);
}

/// Runs with telemetry armed; returns the JSONL trace and the report.
fn run_traced(cfg: NetworkConfig) -> (String, RunReport) {
    telemetry::enable();
    let report = run(cfg);
    let session = telemetry::finish().expect("telemetry was enabled");
    (session.trace_jsonl(), report)
}

/// The sim-clock trace (every `pos.round`, `block.mined`, and
/// `transport.broadcast` event) must be byte-identical between the two
/// paths — the caches emit no trace events of their own, so arming
/// tracing cannot mask a divergence.
#[test]
fn traces_are_byte_identical_across_paths() {
    let (trace_fast, mut report_fast) = run_traced(NetworkConfig {
        pos_hit_cache: true,
        block_seal_cache: true,
        ..chaos_config()
    });
    let (trace_base, mut report_base) = run_traced(NetworkConfig {
        pos_hit_cache: false,
        block_seal_cache: false,
        ..chaos_config()
    });
    assert!(trace_fast.contains("pos.round"), "the run must mine");
    assert!(
        trace_fast.contains("transport.broadcast"),
        "the run must broadcast blocks"
    );
    assert_eq!(
        trace_fast.as_bytes(),
        trace_base.as_bytes(),
        "traces must match byte for byte"
    );
    // Reports agree on everything except the hit/encode accounting.
    report_fast.telemetry = None;
    report_base.telemetry = None;
    assert_eq!(report_fast, report_base);
}

/// The fast path itself stays deterministic: seeded reruns produce
/// byte-identical traces and equal reports (telemetry snapshot included).
#[test]
fn fast_path_reruns_are_byte_identical() {
    let (trace_a, report_a) = run_traced(chaos_config());
    let (trace_b, report_b) = run_traced(chaos_config());
    assert_eq!(trace_a.as_bytes(), trace_b.as_bytes());
    assert!(report_a.telemetry.is_some());
    assert_eq!(report_a, report_b);
}

/// The caches must actually work. Each block takes ~2 PoS rounds at one
/// height (schedule + mine) over a near-identical candidate set, so round
/// two should be nearly all hits; and the seal cache should hold block
/// encodes at roughly one per block where the uncached path pays one per
/// wire-size query, broadcast, and recovery.
#[test]
fn cache_counters_show_reuse() {
    let (_, report) = run_traced(chaos_config());
    let snapshot = report.telemetry.expect("telemetry was armed");
    let hit = snapshot.counter("pos.hit_cache_hit").unwrap_or(0);
    let miss = snapshot.counter("pos.hit_cache_miss").unwrap_or(0);
    let rounds = snapshot.counter("pos.rounds").unwrap_or(0);
    assert!(rounds > 0, "the run must mine");
    assert!(miss > 0, "first round per height must miss, got {miss}");
    assert!(
        hit >= miss / 2,
        "second round per height should mostly hit: {hit} hits vs {miss} misses"
    );
    let mined = snapshot.counter("block.mined").unwrap_or(0);
    let encodes = snapshot.counter("codec.block_encodes").unwrap_or(0);
    assert!(mined > 0);
    // One seal-time encode per mined block, plus item announcements'
    // metadata encodes don't count here; recovery re-serves reuse it.
    assert!(
        encodes <= 2 * mined,
        "seal cache leaking encodes: {encodes} encodes for {mined} blocks"
    );

    let (_, uncached) = run_traced(NetworkConfig {
        pos_hit_cache: false,
        block_seal_cache: false,
        ..chaos_config()
    });
    let snap_base = uncached.telemetry.expect("telemetry was armed");
    let encodes_base = snap_base.counter("codec.block_encodes").unwrap_or(0);
    assert!(
        encodes < encodes_base,
        "cached path must encode strictly less: {encodes} vs {encodes_base}"
    );
    assert_eq!(
        snap_base.counter("pos.hit_cache_hit").unwrap_or(0),
        0,
        "uncached path must never touch the hit table"
    );
}
