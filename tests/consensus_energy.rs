//! Integration test for the Fig. 6 claim: PoS mining consumes far less
//! energy than PoW for the same number of blocks mined.

use edgechain::core::{mine, run_round, Candidate, Difficulty, Identity};
use edgechain::crypto::sha256;
use edgechain::energy::{Battery, DeviceProfile};

/// Simulates mining `blocks` PoW blocks at the paper's difficulty and
/// returns the battery percentage consumed (counting actual hash attempts).
fn pow_battery_cost(blocks: u64) -> f64 {
    let profile = DeviceProfile::galaxy_s8();
    let mut battery = Battery::full(&profile);
    let mut prev = sha256(b"pow-genesis");
    // Difficulty 2 keeps the test fast; scale the per-hash energy so the
    // per-block expected cost equals difficulty 4's (65536/256 = 256×).
    let scale =
        (Difficulty::PAPER.expected_attempts() / Difficulty::new(2).expected_attempts()) as f64;
    for i in 0..blocks {
        let header = [prev.as_bytes().as_slice(), &i.to_be_bytes()].concat();
        let sol = mine(&header, Difficulty::new(2), 0, 1 << 24).expect("found");
        battery.consume(profile.pow_hash_energy * scale * sol.attempts as f64);
        prev = sol.hash;
    }
    100.0 - battery.percent()
}

/// Simulates mining `blocks` PoS blocks (25 s pace, as in Fig. 6) and
/// returns the battery percentage consumed by the per-second checks.
fn pos_battery_cost(blocks: u64) -> f64 {
    let profile = DeviceProfile::galaxy_s8();
    let mut battery = Battery::full(&profile);
    let candidates: Vec<Candidate> = (0..8)
        .map(|i| Candidate {
            account: Identity::from_seed(i).account(),
            tokens: 2,
            stored_items: 5,
        })
        .collect();
    let mut prev = sha256(b"pos-genesis");
    for _ in 0..blocks {
        let out = run_round(&prev, &candidates, 25);
        battery.consume(profile.pos_check_energy * out.delay_secs as f64);
        prev = out.new_pos_hash;
    }
    100.0 - battery.percent()
}

#[test]
fn pos_uses_far_less_battery_than_pow() {
    let blocks = 40;
    let pow = pow_battery_cost(blocks);
    let pos = pos_battery_cost(blocks);
    assert!(pos < pow, "PoS ({pos:.2}%) must beat PoW ({pow:.2}%)");
    // The paper's headline: 64% less energy. Require at least 50% less to
    // absorb the randomness of actual PoW search lengths.
    let saving = 1.0 - pos / pow;
    assert!(
        saving > 0.5,
        "expected ≥50% energy saving, got {:.0}% (pow {pow:.2}%, pos {pos:.2}%)",
        saving * 100.0
    );
}

#[test]
fn pow_four_blocks_per_percent_shape() {
    // Fig. 6 anchor: ~4 PoW blocks per 1% battery at difficulty 4 pace.
    let consumed = pow_battery_cost(40);
    let blocks_per_percent = 40.0 / consumed;
    assert!(
        (2.0..8.0).contains(&blocks_per_percent),
        "PoW blocks/1%: {blocks_per_percent:.1} (expected ≈4)"
    );
}

#[test]
fn pos_eleven_blocks_per_percent_shape() {
    let consumed = pos_battery_cost(60);
    let blocks_per_percent = 60.0 / consumed;
    assert!(
        (7.0..16.0).contains(&blocks_per_percent),
        "PoS blocks/1%: {blocks_per_percent:.1} (expected ≈11)"
    );
}

#[test]
fn pow_energy_grows_with_difficulty() {
    // §VI-C: "The computational complexity grows exponentially in PoW".
    let mut costs = Vec::new();
    for d in [1u32, 2] {
        let mut attempts = 0u64;
        for i in 0..12u64 {
            let header = format!("diff{d}-{i}");
            let sol = mine(header.as_bytes(), Difficulty::new(d), 0, 1 << 24).unwrap();
            attempts += sol.attempts;
        }
        costs.push(attempts as f64 / 12.0);
    }
    assert!(
        costs[1] > costs[0] * 4.0,
        "mean attempts {:?} should grow ~16× per hex digit",
        costs
    );
}
