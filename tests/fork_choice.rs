//! Fork formation and resolution across a network partition.
//!
//! The paper (§III-C) notes that mobility-induced disconnections make
//! branches "likely to appear". This test builds that scenario end to end
//! with real PoS rounds: a network splits into two groups, each group keeps
//! mining its own branch with the candidates it can see, and on healing
//! every node adopts the longest valid chain — unless a checkpoint forbids
//! crossing it (§V-D).

use edgechain::core::{
    run_round, Amendment, Block, Blockchain, Candidate, CheckpointPolicy, EdgeNetwork, Identity,
    NetworkConfig,
};
use edgechain::sim::{
    ByzantineAction, ByzantineSweepConfig, FaultEvent, FaultPlan, NodeId, SimTime,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mines one block on `chain` with the given candidate subset (a network
/// partition mines with whoever it can reach).
fn mine_on(chain: &mut Blockchain, identities: &[Identity], members: &[usize]) {
    let candidates: Vec<Candidate> = members
        .iter()
        .map(|&i| Candidate {
            account: identities[i].account(),
            tokens: 1 + chain.blocks_mined_by(&identities[i].account()),
            stored_items: 3,
        })
        .collect();
    let outcome = run_round(&chain.tip().pos_hash, &candidates, 60);
    let us: Vec<u64> = candidates.iter().map(|c| c.contribution()).collect();
    let block = Block::new(
        chain.height() + 1,
        chain.tip().hash,
        chain.tip().timestamp_secs + outcome.delay_secs,
        outcome.new_pos_hash,
        candidates[outcome.winner].account,
        outcome.delay_secs,
        Amendment::compute(&us, 60),
        vec![],
        vec![NodeId(members[0])],
        chain.tip().storing_nodes.clone(),
        vec![],
    );
    chain.push(block).expect("self-mined block extends tip");
}

#[test]
fn partitioned_branches_converge_to_longest() {
    let identities: Vec<Identity> = (0..6).map(Identity::from_seed).collect();
    // Shared history: 4 blocks mined by everyone.
    let mut trunk = Blockchain::new();
    for _ in 0..4 {
        mine_on(&mut trunk, &identities, &[0, 1, 2, 3, 4, 5]);
    }

    // Partition: group A = {0,1}, group B = {2,3,4,5}. Both keep mining.
    let mut branch_a = trunk.clone();
    let mut branch_b = trunk.clone();
    for _ in 0..3 {
        mine_on(&mut branch_a, &identities, &[0, 1]);
    }
    for _ in 0..5 {
        mine_on(&mut branch_b, &identities, &[2, 3, 4, 5]);
    }
    assert_eq!(branch_a.height(), 7);
    assert_eq!(branch_b.height(), 9);
    // The branches genuinely diverged.
    assert_ne!(branch_a.get(5).unwrap().hash, branch_b.get(5).unwrap().hash);

    // Heal: group A receives B's chain and adopts it (longer).
    let mut node_in_a = branch_a.clone();
    assert!(node_in_a.try_adopt(branch_b.as_slice()));
    assert_eq!(node_in_a, branch_b);
    // Group B ignores A's shorter chain.
    let mut node_in_b = branch_b.clone();
    assert!(!node_in_b.try_adopt(branch_a.as_slice()));
    assert_eq!(node_in_b.height(), 9);

    // Everyone ends on the same chain and all PoS history re-validates.
    let rebuilt = Blockchain::from_blocks(node_in_a.as_slice().to_vec()).unwrap();
    assert_eq!(rebuilt.height(), 9);
}

#[test]
fn checkpoints_stop_branch_takeover_after_finality() {
    let identities: Vec<Identity> = (0..6).map(Identity::from_seed).collect();
    let mut trunk = Blockchain::new();
    for _ in 0..4 {
        mine_on(&mut trunk, &identities, &[0, 1, 2, 3, 4, 5]);
    }
    // Majority branch crosses the checkpoint height (10) on its own fork.
    let mut majority = trunk.clone();
    for _ in 0..8 {
        mine_on(&mut majority, &identities, &[2, 3, 4, 5]);
    }
    assert!(majority.height() >= 10);
    // A longer attacker branch also from the trunk.
    let mut attacker = trunk.clone();
    for _ in 0..12 {
        mine_on(&mut attacker, &identities, &[0, 1]);
    }
    assert!(attacker.height() > majority.height());

    let policy = CheckpointPolicy { interval: 10 };
    let mut node = majority.clone();
    assert!(
        !node.try_adopt_checkpointed(attacker.as_slice(), policy),
        "reorg across a checkpoint must be refused"
    );
    assert_eq!(node, majority);
    // Extending the checkpointed chain itself is still accepted.
    let mut extended = majority.clone();
    mine_on(&mut extended, &identities, &[2, 3, 4, 5]);
    assert!(node.try_adopt_checkpointed(extended.as_slice(), policy));
}

/// Live-network counterpart of the unit-level checkpoint tests above: an
/// equivocating miner and a released private fork drive real reorgs
/// through the broadcast path, and every reorg stays strictly below the
/// checkpoint interval while honest prefixes hold.
#[test]
fn live_network_reorgs_stay_below_checkpoint_depth() {
    let plan = FaultPlan::new(vec![
        FaultEvent::Byzantine {
            node: NodeId(6),
            action: ByzantineAction::Equivocate,
            at: SimTime::from_secs(300),
        },
        FaultEvent::Byzantine {
            node: NodeId(6),
            action: ByzantineAction::Withhold { blocks: 2 },
            at: SimTime::from_secs(1_600),
        },
        FaultEvent::LinkLoss {
            prob: 0.05,
            from: SimTime::from_secs(120),
            until: SimTime::from_secs(3_000),
        },
    ]);
    let report = EdgeNetwork::new(NetworkConfig {
        nodes: 20,
        sim_minutes: 60,
        data_items_per_min: 2.0,
        request_interval_secs: 60,
        fetch_retries: 5,
        retry_backoff_ms: 4_000,
        fault_plan: plan,
        seed: 0xED6E,
        ..NetworkConfig::default()
    })
    .expect("valid config")
    .run();

    assert!(
        report.reorgs >= 1,
        "conflicting tips never reorged: {report}"
    );
    assert!(
        report.max_reorg_depth < 10,
        "a reorg crossed the checkpoint interval: {report}"
    );
    assert_eq!(
        report.invariant_violations, 0,
        "honest prefix consistency broken: {report}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Under random seeded adversary sweeps, any reorg the live network
    /// performs is bounded by checkpoint finality, deterministically.
    #[test]
    fn random_adversary_reorgs_respect_checkpoints(seed in 256u64..384) {
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = FaultPlan::random_byzantine(
            16,
            ByzantineSweepConfig {
                adversary_fraction: 0.2,
                actions_per_adversary: 2,
                horizon: SimTime::from_secs(30 * 60),
            },
            &mut rng,
        );
        let config = || NetworkConfig {
            nodes: 16,
            sim_minutes: 30,
            data_items_per_min: 2.0,
            request_interval_secs: 60,
            fault_plan: plan.clone(),
            seed: seed.wrapping_mul(0x9E37_79B9).wrapping_add(13),
            ..NetworkConfig::default()
        };
        let a = EdgeNetwork::new(config()).expect("valid config").run();
        prop_assert!(
            a.max_reorg_depth < 10,
            "reorg crossed the checkpoint interval: {}", &a
        );
        prop_assert_eq!(a.invariant_violations, 0, "invariant broken: {}", &a);
        let b = EdgeNetwork::new(config()).expect("valid config").run();
        prop_assert_eq!(a, b, "adversarial fork race must replay bit-identically");
    }
}

#[test]
fn rich_partition_mines_faster() {
    // The group holding more contribution mines more blocks in the same
    // simulated time — the PoS advantage carries into fork races.
    let identities: Vec<Identity> = (0..8).map(Identity::from_seed).collect();
    let mut trunk = Blockchain::new();
    for _ in 0..2 {
        mine_on(&mut trunk, &identities, &[0, 1, 2, 3, 4, 5, 6, 7]);
    }
    // Give group A far more storage contribution.
    let mine_with_storage = |chain: &mut Blockchain, members: &[usize], storage: u64| {
        let candidates: Vec<Candidate> = members
            .iter()
            .map(|&i| Candidate {
                account: identities[i].account(),
                tokens: 2,
                stored_items: storage,
            })
            .collect();
        let outcome = run_round(&chain.tip().pos_hash, &candidates, 60);
        let us: Vec<u64> = candidates.iter().map(|c| c.contribution()).collect();
        let block = Block::new(
            chain.height() + 1,
            chain.tip().hash,
            chain.tip().timestamp_secs + outcome.delay_secs,
            outcome.new_pos_hash,
            candidates[outcome.winner].account,
            outcome.delay_secs,
            Amendment::compute(&us, 60),
            vec![],
            vec![NodeId(members[0])],
            chain.tip().storing_nodes.clone(),
            vec![],
        );
        chain.push(block).unwrap();
        outcome.delay_secs
    };
    let mut heavy = trunk.clone();
    let mut light = trunk.clone();
    let mut heavy_time = 0;
    let mut light_time = 0;
    for _ in 0..60 {
        heavy_time += mine_with_storage(&mut heavy, &[0, 1, 2, 3], 40);
        light_time += mine_with_storage(&mut light, &[4, 5, 6, 7], 40);
    }
    // Same per-group contribution ⇒ similar pace (sanity check that B
    // normalizes the rate regardless of absolute contribution). Sixty
    // min-of-four rounds still carry noticeable variance; bound loosely.
    let ratio = heavy_time as f64 / light_time as f64;
    assert!(
        (0.5..2.0).contains(&ratio),
        "equal-contribution groups should mine at similar pace, ratio {ratio}"
    );
}
