//! Allocation fast-path equivalence: the cached [`AllocationContext`]
//! route (`allocation_cache: true`, the default) must be observationally
//! identical to the one-shot per-call solver — same `RunReport`, same
//! allocations, byte-identical telemetry traces — across figure-sized
//! runs, the Random-placement baseline, and a chaos run that exercises
//! crashes, repair re-allocations, and topology churn.
//!
//! [`AllocationContext`]: edgechain::core::AllocationContext

use edgechain::core::{EdgeNetwork, NetworkConfig, Placement, RunReport};
use edgechain::sim::{FaultEvent, FaultPlan, NodeId, SimTime};
use edgechain::telemetry;

fn run(cfg: NetworkConfig) -> RunReport {
    EdgeNetwork::new(cfg).expect("valid config").run()
}

/// Fig. 4-sized cell: 30 nodes, 2 items/min, 40 simulated minutes.
fn fig4_config() -> NetworkConfig {
    NetworkConfig {
        nodes: 30,
        data_items_per_min: 2.0,
        sim_minutes: 40,
        seed: 0xFA57_0004,
        ..NetworkConfig::default()
    }
}

/// Fig. 5-sized cell under the Random baseline — the placement that
/// draws from the run's rng, so any extra/missing draw on the fast path
/// would cascade into a visibly different run.
fn fig5_random_config() -> NetworkConfig {
    NetworkConfig {
        nodes: 20,
        data_items_per_min: 2.0,
        sim_minutes: 40,
        placement: Placement::Random,
        seed: 0xFA57_0005,
        ..NetworkConfig::default()
    }
}

/// Chaos run: crashes (one permanent, triggering UFL repair sweeps), a
/// restart, and a lossy window — every topology change invalidates the
/// cached instance, every repair re-solves it.
fn chaos_config() -> NetworkConfig {
    NetworkConfig {
        nodes: 20,
        data_items_per_min: 2.0,
        sim_minutes: 25,
        request_interval_secs: 60,
        fault_plan: FaultPlan::new(vec![
            FaultEvent::Crash {
                node: NodeId(3),
                at: SimTime::from_secs(500),
            },
            FaultEvent::Restart {
                node: NodeId(3),
                at: SimTime::from_secs(900),
            },
            FaultEvent::Crash {
                node: NodeId(11),
                at: SimTime::from_secs(650),
            },
            FaultEvent::LinkLoss {
                prob: 0.05,
                from: SimTime::from_secs(200),
                until: SimTime::from_secs(1_000),
            },
        ]),
        seed: 0xFA57_C405,
        ..NetworkConfig::default()
    }
}

/// Same config, cache on vs off, telemetry disarmed (solver-call counters
/// legitimately differ between the paths): the full reports must be equal
/// — every allocation decision, rng draw, and transport byte included.
fn assert_paths_equivalent(label: &str, cfg: NetworkConfig) {
    let fast = run(NetworkConfig {
        allocation_cache: true,
        ..cfg.clone()
    });
    let baseline = run(NetworkConfig {
        allocation_cache: false,
        ..cfg
    });
    assert!(fast.telemetry.is_none() && baseline.telemetry.is_none());
    assert_eq!(fast, baseline, "{label}: fast path diverged");
}

#[test]
fn fig4_sized_run_is_equivalent() {
    assert_paths_equivalent("fig4", fig4_config());
}

#[test]
fn fig5_random_placement_is_equivalent() {
    assert_paths_equivalent("fig5-random", fig5_random_config());
}

#[test]
fn chaos_run_is_equivalent() {
    assert_paths_equivalent("chaos", chaos_config());
}

/// Runs with telemetry armed; returns the JSONL trace and the report.
fn run_traced(cfg: NetworkConfig) -> (String, RunReport) {
    telemetry::enable();
    let report = run(cfg);
    let session = telemetry::finish().expect("telemetry was enabled");
    (session.trace_jsonl(), report)
}

/// The sim-clock trace (including every `ufl.alloc` event) must be
/// byte-identical between the two paths — the solvers emit no trace events
/// of their own, so arming tracing cannot mask a divergence.
#[test]
fn traces_are_byte_identical_across_paths() {
    let (trace_fast, mut report_fast) = run_traced(NetworkConfig {
        allocation_cache: true,
        ..chaos_config()
    });
    let (trace_base, mut report_base) = run_traced(NetworkConfig {
        allocation_cache: false,
        ..chaos_config()
    });
    assert!(
        trace_fast.contains("ufl.alloc"),
        "the run must allocate storers"
    );
    assert_eq!(
        trace_fast.as_bytes(),
        trace_base.as_bytes(),
        "traces must match byte for byte"
    );
    // Reports agree on everything except the solver-call accounting.
    report_fast.telemetry = None;
    report_base.telemetry = None;
    assert_eq!(report_fast, report_base);
}

/// The fast path itself stays deterministic: seeded reruns produce
/// byte-identical traces and equal reports (telemetry snapshot included).
#[test]
fn fast_path_reruns_are_byte_identical() {
    let (trace_a, report_a) = run_traced(chaos_config());
    let (trace_b, report_b) = run_traced(chaos_config());
    assert_eq!(trace_a.as_bytes(), trace_b.as_bytes());
    assert!(report_a.telemetry.is_some());
    assert_eq!(report_a, report_b);
}

/// The cache must actually work: a chaos run (faults → topology churn →
/// rebuilds; item stores → incremental cost patches; block-time triple
/// allocation → solution reuse) must exercise all three counters.
#[test]
fn cache_counters_show_hits_misses_and_patches() {
    let (_, report) = run_traced(chaos_config());
    let snapshot = report.telemetry.expect("telemetry was armed");
    let hit = snapshot.counter("ufl.cache_hit").unwrap_or(0);
    let miss = snapshot.counter("ufl.cache_miss").unwrap_or(0);
    let patched = snapshot.counter("ufl.incremental_updates").unwrap_or(0);
    assert!(hit > 0, "expected solution reuse, got {hit} hits");
    assert!(miss > 0, "expected topology-driven rebuilds, got {miss}");
    assert!(
        patched > 0,
        "expected incremental FDC patches, got {patched}"
    );
    // The cache replaces full solves: every mined block triggers at least
    // two allocation calls (block storers + recent growth) beyond the
    // per-item ones, so hits must be a substantial share of the calls.
    let solves = snapshot.counter("ufl.solve_calls").unwrap_or(0);
    assert!(
        hit >= solves / 4,
        "cache barely used: {hit} hits vs {solves} solves"
    );
}
