//! Telemetry integration: the structured trace of a seeded chaos run must
//! be byte-identical across reruns, fault events must appear in causal
//! (schedule) order, and arming telemetry must not perturb the simulation
//! itself — the report computed with tracing on equals the report computed
//! with tracing off, except for the `telemetry` summary section.

use edgechain::core::{EdgeNetwork, NetworkConfig, RunReport};
use edgechain::sim::{FaultEvent, FaultPlan, NodeId, SimTime};
use edgechain::telemetry;

fn chaos_plan() -> FaultPlan {
    FaultPlan::new(vec![
        FaultEvent::Crash {
            node: NodeId(4),
            at: SimTime::from_secs(600),
        },
        FaultEvent::Restart {
            node: NodeId(4),
            at: SimTime::from_secs(840),
        },
        // Node 13 dies for good: its replicas must be repaired elsewhere.
        FaultEvent::Crash {
            node: NodeId(13),
            at: SimTime::from_secs(700),
        },
        FaultEvent::LinkLoss {
            prob: 0.05,
            from: SimTime::from_secs(120),
            until: SimTime::from_secs(1_100),
        },
    ])
}

fn chaos_config() -> NetworkConfig {
    NetworkConfig {
        nodes: 20,
        sim_minutes: 20,
        data_items_per_min: 2.0,
        request_interval_secs: 60,
        fetch_retries: 5,
        retry_backoff_ms: 4_000,
        fault_plan: chaos_plan(),
        seed: 0xC4A05,
        ..NetworkConfig::default()
    }
}

/// Runs the chaos scenario with telemetry armed; returns the JSONL trace,
/// the report, and the `(t_ms, kind-field)` sequence of fault events.
fn run_traced() -> (String, RunReport, Vec<(u64, String)>) {
    telemetry::enable();
    let report = EdgeNetwork::new(chaos_config())
        .expect("valid config")
        .run();
    let session = telemetry::finish().expect("telemetry was enabled");
    let faults = session
        .events()
        .iter()
        .filter(|e| e.kind == "fault.injected")
        .map(|e| {
            let kind = e
                .fields
                .iter()
                .find_map(|(k, v)| match (k, v) {
                    (&"kind", telemetry::Value::Str(s)) => Some(s.clone()),
                    _ => None,
                })
                .expect("fault.injected events carry a kind field");
            (e.t_ms, kind)
        })
        .collect();
    (session.trace_jsonl(), report, faults)
}

#[test]
fn chaos_trace_is_byte_identical_across_reruns() {
    let (trace_a, report_a, _) = run_traced();
    let (trace_b, report_b, _) = run_traced();
    assert!(!trace_a.is_empty(), "the chaos run must produce events");
    assert_eq!(
        trace_a.as_bytes(),
        trace_b.as_bytes(),
        "same seed must produce a byte-identical JSONL trace"
    );
    // The deterministic registry snapshot in the report is also stable.
    assert!(report_a.telemetry.is_some());
    assert_eq!(report_a, report_b);
}

#[test]
fn fault_events_appear_in_causal_order() {
    let (_, report, faults) = run_traced();
    assert_eq!(
        faults.len() as u64,
        report.faults_injected,
        "every injected fault action lands in the trace"
    );
    assert!(
        faults.windows(2).all(|w| w[0].0 <= w[1].0),
        "fault events must be time-ordered: {faults:?}"
    );
    // The schedule itself: loss starts first, node 4 crashes before node 13,
    // and node 4's restart comes after both crashes.
    let kinds: Vec<&str> = faults.iter().map(|(_, k)| k.as_str()).collect();
    assert_eq!(
        kinds,
        vec!["loss_start", "crash", "crash", "restart", "loss_end"]
    );
    assert_eq!(faults[0].0, 120_000);
    assert_eq!(faults[1].0, 600_000);
    assert_eq!(faults[3].0, 840_000);
}

#[test]
fn telemetry_does_not_perturb_the_simulation() {
    // Tracing off: the report must carry no telemetry section.
    let baseline = EdgeNetwork::new(chaos_config())
        .expect("valid config")
        .run();
    assert!(baseline.telemetry.is_none());

    // Tracing on: identical simulation outcome, plus the summary section.
    let (_, mut traced, _) = run_traced();
    let snapshot = traced.telemetry.take().expect("traced run has a summary");
    assert_eq!(
        traced, baseline,
        "arming telemetry must not change simulation results"
    );

    // The snapshot agrees with the report's own accounting.
    assert_eq!(snapshot.counter("block.mined"), Some(baseline.blocks_mined));
    assert_eq!(
        snapshot.counter("fault.injected"),
        Some(baseline.faults_injected)
    );
    assert_eq!(
        snapshot.counter("transport.retries"),
        Some(baseline.retries)
    );
    // Wall-clock profiling never leaks into the deterministic snapshot.
    assert!(snapshot
        .entries
        .iter()
        .all(|(name, _)| !name.ends_with("_ns")));
}
