//! Telemetry integration: the structured trace of a seeded chaos run must
//! be byte-identical across reruns, fault events must appear in causal
//! (schedule) order, and arming telemetry must not perturb the simulation
//! itself — the report computed with tracing on equals the report computed
//! with tracing off, except for the `telemetry` summary section.

use edgechain::core::{EdgeNetwork, NetworkConfig, RunReport};
use edgechain::sim::{FaultEvent, FaultPlan, NodeId, SimTime};
use edgechain::telemetry;

fn chaos_plan() -> FaultPlan {
    FaultPlan::new(vec![
        FaultEvent::Crash {
            node: NodeId(4),
            at: SimTime::from_secs(600),
        },
        FaultEvent::Restart {
            node: NodeId(4),
            at: SimTime::from_secs(840),
        },
        // Node 13 dies for good: its replicas must be repaired elsewhere.
        FaultEvent::Crash {
            node: NodeId(13),
            at: SimTime::from_secs(700),
        },
        FaultEvent::LinkLoss {
            prob: 0.05,
            from: SimTime::from_secs(120),
            until: SimTime::from_secs(1_100),
        },
    ])
}

fn chaos_config() -> NetworkConfig {
    NetworkConfig {
        nodes: 20,
        sim_minutes: 20,
        data_items_per_min: 2.0,
        request_interval_secs: 60,
        fetch_retries: 5,
        retry_backoff_ms: 4_000,
        fault_plan: chaos_plan(),
        seed: 0xC4A05,
        ..NetworkConfig::default()
    }
}

/// Runs the chaos scenario with telemetry armed; returns the JSONL trace,
/// the report, and the `(t_ms, kind-field)` sequence of fault events.
fn run_traced() -> (String, RunReport, Vec<(u64, String)>) {
    telemetry::enable();
    let report = EdgeNetwork::new(chaos_config())
        .expect("valid config")
        .run();
    let session = telemetry::finish().expect("telemetry was enabled");
    let faults = session
        .events()
        .iter()
        .filter(|e| e.kind == "fault.injected")
        .map(|e| {
            let kind = e
                .fields
                .iter()
                .find_map(|(k, v)| match (k, v) {
                    (&"kind", telemetry::Value::Str(s)) => Some(s.clone()),
                    _ => None,
                })
                .expect("fault.injected events carry a kind field");
            (e.t_ms, kind)
        })
        .collect();
    (session.trace_jsonl(), report, faults)
}

#[test]
fn chaos_trace_is_byte_identical_across_reruns() {
    let (trace_a, report_a, _) = run_traced();
    let (trace_b, report_b, _) = run_traced();
    assert!(!trace_a.is_empty(), "the chaos run must produce events");
    assert_eq!(
        trace_a.as_bytes(),
        trace_b.as_bytes(),
        "same seed must produce a byte-identical JSONL trace"
    );
    // The deterministic registry snapshot in the report is also stable.
    assert!(report_a.telemetry.is_some());
    assert_eq!(report_a, report_b);
}

#[test]
fn fault_events_appear_in_causal_order() {
    let (_, report, faults) = run_traced();
    assert_eq!(
        faults.len() as u64,
        report.faults_injected,
        "every injected fault action lands in the trace"
    );
    assert!(
        faults.windows(2).all(|w| w[0].0 <= w[1].0),
        "fault events must be time-ordered: {faults:?}"
    );
    // The schedule itself: loss starts first, node 4 crashes before node 13,
    // and node 4's restart comes after both crashes.
    let kinds: Vec<&str> = faults.iter().map(|(_, k)| k.as_str()).collect();
    assert_eq!(
        kinds,
        vec!["loss_start", "crash", "crash", "restart", "loss_end"]
    );
    assert_eq!(faults[0].0, 120_000);
    assert_eq!(faults[1].0, 600_000);
    assert_eq!(faults[3].0, 840_000);
}

/// Runs the chaos scenario with telemetry *and* causal spans armed.
fn run_traced_spans() -> (telemetry::Session, RunReport) {
    telemetry::enable();
    telemetry::enable_spans();
    let report = EdgeNetwork::new(chaos_config())
        .expect("valid config")
        .run();
    let session = telemetry::finish().expect("telemetry was enabled");
    (session, report)
}

#[test]
fn span_traces_are_byte_identical_across_reruns() {
    let (sess_a, report_a) = run_traced_spans();
    let (sess_b, report_b) = run_traced_spans();
    let spans = telemetry::spans_from_events(sess_a.events());
    assert!(!spans.is_empty(), "spans-armed chaos run must emit spans");
    assert_eq!(
        sess_a.trace_jsonl().as_bytes(),
        sess_b.trace_jsonl().as_bytes(),
        "same seed must produce a byte-identical span trace"
    );
    assert_eq!(report_a, report_b);
}

#[test]
fn spans_do_not_perturb_the_run_or_the_registry() {
    // Spans only append trace events — they never touch the registry or
    // the simulation, so the full report (including the registry
    // snapshot) of a spans-on run equals a metrics-only run's.
    let (_, with_spans) = run_traced_spans();
    let (_, metrics_only, _) = run_traced();
    assert_eq!(
        with_spans, metrics_only,
        "arming spans must not change the report or registry"
    );
}

#[test]
fn critical_path_phases_sum_to_root_and_cover_item_latency() {
    let (session, _) = run_traced_spans();
    let idx = telemetry::SpanIndex::new(telemetry::spans_from_events(session.events()));
    let roots = idx.roots();
    assert!(!roots.is_empty());
    let mut item_total = 0u64;
    let mut item_gap = 0u64;
    let mut item_traces = 0u64;
    for root in &roots {
        let phases = idx.attribute(root.id);
        let sum: u64 = phases.iter().map(|(_, d)| d).sum();
        assert_eq!(
            sum,
            root.dur_ms(),
            "phase durations must sum exactly to the root span ({})",
            root.kind
        );
        if root.kind == "item.lifecycle" {
            item_traces += 1;
            item_total += sum;
            item_gap += phases
                .iter()
                .filter(|(p, _)| p == telemetry::span::GAP_PHASE)
                .map(|(_, d)| *d)
                .sum::<u64>();
        }
    }
    assert!(item_traces > 0, "chaos run packs items");
    // The acceptance bar: at least 95 % of item inclusion latency is
    // attributed to named phases, not the gap bucket.
    assert!(
        item_gap * 20 <= item_total,
        "named phases must cover \u{2265}95% of item latency (gap {item_gap} of {item_total} ms)"
    );
}

#[test]
fn span_links_survive_drops_retries_and_crashes() {
    let (session, report) = run_traced_spans();
    let spans = telemetry::spans_from_events(session.events());
    let idx = telemetry::SpanIndex::new(spans.clone());
    for s in &spans {
        if s.parent != 0 {
            let p = idx
                .get(s.parent)
                .unwrap_or_else(|| panic!("{}: parent #{} missing from trace", s.kind, s.parent));
            assert!(
                p.t0_ms <= s.t0_ms && s.t1_ms <= p.t1_ms,
                "{} [{}, {}] must be contained in parent {} [{}, {}]",
                s.kind,
                s.t0_ms,
                s.t1_ms,
                p.kind,
                p.t0_ms,
                p.t1_ms
            );
        }
        if s.follows != 0 {
            assert!(
                idx.get(s.follows).is_some(),
                "{}: follows-from target #{} missing from trace",
                s.kind,
                s.follows
            );
        }
    }
    // The lossy window forces backoff retries; the fetch lifecycles that
    // retried must still be single roots with their backoffs as children.
    assert!(report.retries > 0, "chaos plan must force retries");
    let backoffs: Vec<_> = spans.iter().filter(|s| s.kind == "fetch.backoff").collect();
    assert!(
        !backoffs.is_empty(),
        "lossy chaos run must produce fetch backoffs"
    );
    for b in &backoffs {
        assert!(
            idx.get(b.parent)
                .is_some_and(|p| p.kind == "fetch.lifecycle"),
            "fetch.backoff must hang under its fetch.lifecycle root"
        );
    }
    // Cross-node containment: block.verify spans land at remote receivers
    // yet stay linked (verify → broadcast → lifecycle).
    let verify = spans
        .iter()
        .find(|s| s.kind == "block.verify")
        .expect("broadcasts produce per-receiver verify spans");
    let bc = idx.get(verify.parent).expect("verify has a parent");
    assert_eq!(bc.kind, "block.broadcast");
    assert!(idx
        .get(bc.parent)
        .is_some_and(|r| r.kind == "block.lifecycle"));
}

#[test]
fn slo_section_is_populated_and_healthy() {
    // The SLO verdict is computed unconditionally — no telemetry needed.
    let report = EdgeNetwork::new(chaos_config())
        .expect("valid config")
        .run();
    assert!(report.inclusion_latency.count > 0);
    assert!(report.inclusion_latency.p99.is_some());
    assert!(report.fetch_latency.count > 0);
    assert_eq!(report.slo.inclusion, report.inclusion_latency);
    assert_eq!(report.slo.fetch, report.fetch_latency);
    assert_eq!(
        report.fetch_latency.p95, report.delivery_p95,
        "the legacy delivery_p95 and the new fetch summary must agree"
    );
    assert_eq!(report.slo.availability, report.availability);
    assert_eq!(
        report.slo.breaches, 0,
        "the healthy chaos seed stays within every SLO: {:?}",
        report.slo.alerts
    );
}

#[test]
fn telemetry_does_not_perturb_the_simulation() {
    // Tracing off: the report must carry no telemetry section.
    let baseline = EdgeNetwork::new(chaos_config())
        .expect("valid config")
        .run();
    assert!(baseline.telemetry.is_none());

    // Tracing on: identical simulation outcome, plus the summary section.
    let (_, mut traced, _) = run_traced();
    let snapshot = traced.telemetry.take().expect("traced run has a summary");
    assert_eq!(
        traced, baseline,
        "arming telemetry must not change simulation results"
    );

    // The snapshot agrees with the report's own accounting.
    assert_eq!(snapshot.counter("block.mined"), Some(baseline.blocks_mined));
    assert_eq!(
        snapshot.counter("fault.injected"),
        Some(baseline.faults_injected)
    );
    assert_eq!(
        snapshot.counter("transport.retries"),
        Some(baseline.retries)
    );
    // Wall-clock profiling never leaks into the deterministic snapshot.
    assert!(snapshot
        .entries
        .iter()
        .all(|(name, _)| !name.ends_with("_ns")));
}
