//! Byzantine adversary runs end to end: equivocation, forged blocks,
//! withheld private forks, tampered signatures, and garbage payloads —
//! composed with crash churn and link loss — must leave every honest node
//! on a consistent prefix with every injected artifact detected.
//!
//! The adversary engine is seeded, so each test also pins bit-identical
//! reruns and checks that moving the role seed moves the adversaries.

use edgechain::core::{EdgeNetwork, NetworkConfig, RunReport};
use edgechain::sim::{
    ByzantineAction, ByzantineSweepConfig, FaultEvent, FaultPlan, NodeId, RoleAssignment, SimTime,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Three adversaries out of twenty (15 % < the 20 % bound), each armed
/// with a different attack, plus crash churn and a long lossy window so
/// the Byzantine machinery is exercised under the PR 1 fault model too.
fn byzantine_plan() -> FaultPlan {
    FaultPlan::new(vec![
        // Node 5: seal two conflicting blocks at one height, then later
        // spray garbage bytes that no receiver can decode.
        FaultEvent::Byzantine {
            node: NodeId(6),
            action: ByzantineAction::Equivocate,
            at: SimTime::from_secs(300),
        },
        FaultEvent::Byzantine {
            node: NodeId(6),
            action: ByzantineAction::Withhold { blocks: 2 },
            at: SimTime::from_secs(1_600),
        },
        FaultEvent::Byzantine {
            node: NodeId(15),
            action: ByzantineAction::TamperSignature,
            at: SimTime::from_secs(600),
        },
        FaultEvent::Byzantine {
            node: NodeId(15),
            action: ByzantineAction::GarbagePayload { bytes: 2_048 },
            at: SimTime::from_secs(1_200),
        },
        FaultEvent::Byzantine {
            node: NodeId(19),
            action: ByzantineAction::ForgeBlock,
            at: SimTime::from_secs(900),
        },
        FaultEvent::Crash {
            node: NodeId(3),
            at: SimTime::from_secs(800),
        },
        FaultEvent::Restart {
            node: NodeId(3),
            at: SimTime::from_secs(1_500),
        },
        FaultEvent::LinkLoss {
            prob: 0.05,
            from: SimTime::from_secs(120),
            until: SimTime::from_secs(3_000),
        },
    ])
}

fn byzantine_config(seed: u64) -> NetworkConfig {
    NetworkConfig {
        nodes: 20,
        sim_minutes: 60,
        data_items_per_min: 2.0,
        request_interval_secs: 60,
        fetch_retries: 5,
        retry_backoff_ms: 4_000,
        fault_plan: byzantine_plan(),
        seed,
        ..NetworkConfig::default()
    }
}

fn run(config: NetworkConfig) -> RunReport {
    EdgeNetwork::new(config).expect("valid config").run()
}

#[test]
fn byzantine_run_converges_and_detects_every_artifact() {
    let report = run(byzantine_config(0xED6E));

    // The chain made progress despite five attacks, churn, and loss.
    assert!(report.blocks_mined > 20, "chain stalled: {report}");
    // Every injected artifact (equivocation pair, forged block, tampered
    // block, garbage payload, withheld fork) was detected by honest nodes.
    assert!(report.byz_injected >= 4, "too few attacks fired: {report}");
    assert_eq!(
        report.byz_detected, report.byz_injected,
        "an injected artifact went undetected: {report}"
    );
    // The released private fork (and/or equivocation race) forced at
    // least one reorg, bounded below the checkpoint interval.
    assert!(report.reorgs >= 1, "no reorg observed: {report}");
    assert!(
        report.max_reorg_depth < 10,
        "reorg crossed the checkpoint interval: {report}"
    );
    // Culprits were quarantined and the run stayed available.
    assert!(
        report.quarantine_events >= 1,
        "nobody quarantined: {report}"
    );
    assert!(
        report.availability >= 0.9,
        "availability dropped below 0.9: {report}"
    );
    // No honest node finalized conflicting blocks; prefixes stayed
    // consistent (checked every block by the invariant sweep).
    assert_eq!(report.invariant_violations, 0, "invariant broken: {report}");
}

#[test]
fn byzantine_runs_are_bit_identical_per_seed() {
    let a = run(byzantine_config(0xED6E));
    let b = run(byzantine_config(0xED6E));
    assert_eq!(a, b, "same seed + plan must reproduce the identical report");

    let c = run(byzantine_config(0xED6F));
    assert_ne!(a, c, "a different seed should perturb the run");
}

#[test]
fn role_seed_moves_the_malicious_draw() {
    // Seeded role assignment (satellite of the adversary engine): the
    // denial-role draw comes from `FaultPlan::roles`, not the legacy
    // ID-tail rule, so moving the role seed moves the deniers while the
    // run seed stays put.
    let config = |role_seed: u64| NetworkConfig {
        nodes: 16,
        sim_minutes: 30,
        data_items_per_min: 2.0,
        request_interval_secs: 45,
        fault_plan: FaultPlan::none().with_roles(RoleAssignment {
            seed: role_seed,
            malicious_fraction: 0.25,
        }),
        seed: 0x5EED,
        ..NetworkConfig::default()
    };
    let a = run(config(1));
    let b = run(config(1));
    assert_eq!(a, b, "role-seeded runs must stay deterministic");
    let c = run(config(2));
    assert_ne!(a, c, "a different role seed should move the deniers");
    assert_eq!(a.invariant_violations, 0);
    assert_eq!(c.invariant_violations, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random seeded adversary sweeps (≤ 20 % adversarial) never break an
    /// invariant and never let an injected artifact slip past detection,
    /// and each sweep replays bit-identically.
    #[test]
    fn random_byzantine_sweeps_detect_and_stay_consistent(seed in 0u64..256) {
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = FaultPlan::random_byzantine(
            16,
            ByzantineSweepConfig {
                adversary_fraction: 0.2,
                actions_per_adversary: 2,
                horizon: SimTime::from_secs(30 * 60),
            },
            &mut rng,
        );
        let config = || NetworkConfig {
            nodes: 16,
            sim_minutes: 30,
            data_items_per_min: 2.0,
            request_interval_secs: 60,
            fault_plan: plan.clone(),
            seed: seed.wrapping_mul(0x9E37_79B9).wrapping_add(7),
            ..NetworkConfig::default()
        };
        let a = run(config());
        prop_assert_eq!(a.invariant_violations, 0, "invariant broken: {}", &a);
        prop_assert_eq!(a.byz_detected, a.byz_injected, "artifact undetected: {}", &a);
        prop_assert!(a.blocks_mined > 5, "chain stalled: {}", &a);
        let b = run(config());
        prop_assert_eq!(a, b, "seeded sweep must replay bit-identically");
    }
}
