//! Scale-path equivalence (ISSUE 9): the sparse lazy-route topology
//! (`sparse_routes: true`) must be *bit-identical* to the dense reference
//! below the equivalence threshold — same `RunReport`, byte-identical
//! telemetry traces — across a figure-sized run, a chaos run (crashes,
//! repair, link loss), and a Byzantine run. The region-decomposed
//! allocation engine (`region_alloc`) is an approximation, so it is held
//! to health bars (availability, invariants, determinism) rather than
//! bit-equivalence.

use edgechain::core::{EdgeNetwork, NetworkConfig, RunReport};
use edgechain::sim::{ByzantineAction, FaultEvent, FaultPlan, NodeId, SimTime, TopologyConfig};
use edgechain::telemetry;

fn run(cfg: NetworkConfig) -> RunReport {
    EdgeNetwork::new(cfg).expect("valid config").run()
}

fn with_sparse(mut cfg: NetworkConfig, sparse: bool) -> NetworkConfig {
    cfg.topology = TopologyConfig {
        sparse_routes: sparse,
        ..cfg.topology
    };
    cfg
}

/// Fig. 4-sized cell (same seed as `tests/allocation_fastpath.rs`).
fn fig4_config() -> NetworkConfig {
    NetworkConfig {
        nodes: 30,
        data_items_per_min: 2.0,
        sim_minutes: 40,
        seed: 0xFA57_0004,
        ..NetworkConfig::default()
    }
}

/// Chaos run: crashes (triggering UFL repair sweeps), a restart, and a
/// lossy window — every topology change rebuilds the route state, so the
/// sparse lazy rows are re-materialized across many epochs.
fn chaos_config() -> NetworkConfig {
    NetworkConfig {
        nodes: 20,
        data_items_per_min: 2.0,
        sim_minutes: 25,
        request_interval_secs: 60,
        fault_plan: FaultPlan::new(vec![
            FaultEvent::Crash {
                node: NodeId(3),
                at: SimTime::from_secs(500),
            },
            FaultEvent::Restart {
                node: NodeId(3),
                at: SimTime::from_secs(900),
            },
            FaultEvent::Crash {
                node: NodeId(11),
                at: SimTime::from_secs(650),
            },
            FaultEvent::LinkLoss {
                prob: 0.05,
                from: SimTime::from_secs(200),
                until: SimTime::from_secs(1_000),
            },
        ]),
        seed: 0xFA57_C405,
        ..NetworkConfig::default()
    }
}

/// Byzantine run: equivocation, forged block, tampered signature — the
/// adversary engine consults hop counts and reachability everywhere, so a
/// single off-by-one in the sparse BFS would cascade into the verdicts.
fn byzantine_config() -> NetworkConfig {
    NetworkConfig {
        nodes: 20,
        sim_minutes: 40,
        data_items_per_min: 2.0,
        request_interval_secs: 60,
        fetch_retries: 5,
        retry_backoff_ms: 4_000,
        fault_plan: FaultPlan::new(vec![
            FaultEvent::Byzantine {
                node: NodeId(6),
                action: ByzantineAction::Equivocate,
                at: SimTime::from_secs(300),
            },
            FaultEvent::Byzantine {
                node: NodeId(15),
                action: ByzantineAction::TamperSignature,
                at: SimTime::from_secs(600),
            },
            FaultEvent::Byzantine {
                node: NodeId(19),
                action: ByzantineAction::ForgeBlock,
                at: SimTime::from_secs(900),
            },
            FaultEvent::Crash {
                node: NodeId(3),
                at: SimTime::from_secs(800),
            },
            FaultEvent::LinkLoss {
                prob: 0.05,
                from: SimTime::from_secs(120),
                until: SimTime::from_secs(1_800),
            },
        ]),
        seed: 0xFA57_B12A,
        ..NetworkConfig::default()
    }
}

/// Same config, sparse vs dense routes: the full reports must be equal —
/// every route, RDC value, rng draw, and transport byte included.
fn assert_sparse_dense_equivalent(label: &str, cfg: NetworkConfig) {
    let sparse = run(with_sparse(cfg.clone(), true));
    let dense = run(with_sparse(cfg, false));
    assert!(sparse.telemetry.is_none() && dense.telemetry.is_none());
    assert_eq!(sparse, dense, "{label}: sparse topology diverged");
}

#[test]
fn fig4_sized_run_is_equivalent() {
    assert_sparse_dense_equivalent("fig4", fig4_config());
}

#[test]
fn chaos_run_is_equivalent() {
    assert_sparse_dense_equivalent("chaos", chaos_config());
}

#[test]
fn byzantine_run_is_equivalent() {
    assert_sparse_dense_equivalent("byzantine", byzantine_config());
}

/// Runs with telemetry armed; returns the JSONL trace and the report.
fn run_traced(cfg: NetworkConfig) -> (String, RunReport) {
    telemetry::enable();
    let report = run(cfg);
    let session = telemetry::finish().expect("telemetry was enabled");
    (session.trace_jsonl(), report)
}

/// The sim-clock trace must be byte-identical between route
/// representations — the topology emits no trace events of its own, so a
/// hop-count or path divergence would surface as shifted timestamps.
#[test]
fn traces_are_byte_identical_across_route_representations() {
    let (trace_sparse, mut report_sparse) = run_traced(with_sparse(chaos_config(), true));
    let (trace_dense, mut report_dense) = run_traced(with_sparse(chaos_config(), false));
    assert!(
        trace_sparse.contains("ufl.alloc"),
        "the run must allocate storers"
    );
    assert_eq!(
        trace_sparse.as_bytes(),
        trace_dense.as_bytes(),
        "traces must match byte for byte"
    );
    // Counter snapshots legitimately differ (the dense path counts its
    // eager parallel BFS fan-out); everything observable must not.
    report_sparse.telemetry = None;
    report_dense.telemetry = None;
    assert_eq!(report_sparse, report_dense);
}

/// A scale-shaped cell: paper field at n = 200 (average radio degree in
/// the thirties, like the constant-density bench points), full scale path
/// on. This is the regime the regional engine is built for — at toy sizes
/// (n ≈ 20, two or three regions) its origin-local replicas are more
/// exposed to transient mobility disconnections than the global solve.
fn regional_scale_config() -> NetworkConfig {
    NetworkConfig {
        nodes: 200,
        data_items_per_min: 3.0,
        sim_minutes: 15,
        region_alloc: true,
        topology: TopologyConfig {
            sparse_routes: true,
            ..TopologyConfig::default()
        },
        seed: 0xFA57_9E01,
        ..NetworkConfig::default()
    }
}

/// The regional allocation engine is an approximation, not a replica of
/// the global solve — its bar is a healthy network: blocks mined, high
/// availability, no invariant violations, and replicas actually placed.
#[test]
fn regional_allocation_run_is_healthy() {
    let report = run(regional_scale_config());
    assert!(report.blocks_mined > 0);
    assert!(
        report.availability >= 0.9,
        "regional availability {:.3} < 0.9",
        report.availability
    );
    assert_eq!(report.invariant_violations, 0);
    assert!(
        report.mean_replicas >= 1.0,
        "regional path stored no replicas"
    );
}

/// The regional path under churn: crashes, a restart, and link loss must
/// not corrupt anything the invariant checker watches, and the run must
/// keep producing blocks.
#[test]
fn regional_chaos_run_keeps_invariants() {
    let report = run(NetworkConfig {
        region_alloc: true,
        ..chaos_config()
    });
    assert!(report.blocks_mined > 0);
    assert_eq!(report.invariant_violations, 0);
    assert!(report.completed_requests > 0);
}

/// Seeded regional reruns are deterministic: byte-identical traces and
/// equal reports.
#[test]
fn regional_reruns_are_byte_identical() {
    let cfg = || NetworkConfig {
        region_alloc: true,
        ..fig4_config()
    };
    let (trace_a, report_a) = run_traced(cfg());
    let (trace_b, report_b) = run_traced(cfg());
    assert_eq!(trace_a.as_bytes(), trace_b.as_bytes());
    assert_eq!(report_a, report_b);
}

/// Tracking-state GC: with a retention window shorter than the run, the
/// tombstone peak must stay bounded by the window, not the item history.
#[test]
fn tracking_state_is_bounded_by_retention_window() {
    let cfg = |retention: u64| NetworkConfig {
        nodes: 20,
        data_items_per_min: 6.0,
        data_valid_minutes: 5,
        expiration_sweep_secs: 60,
        sim_minutes: 120,
        tracking_retention_secs: retention,
        seed: 0xFA57_6C01,
        ..NetworkConfig::default()
    };
    let windowed = run(cfg(900));
    let unbounded = run(cfg(u64::MAX / 2));
    assert!(windowed.data_expired > 0, "run must expire items");
    assert!(
        windowed.peak_tracking_entries < unbounded.peak_tracking_entries,
        "GC did not shrink tracking state: {} vs {}",
        windowed.peak_tracking_entries,
        unbounded.peak_tracking_entries
    );
    // ~15 min of items at 6/min is the window's worth plus sweep slack.
    assert!(
        windowed.peak_tracking_entries <= 200,
        "windowed peak {} not O(window)",
        windowed.peak_tracking_entries
    );
}
