//! `trace-report` — renders a telemetry JSONL trace as per-phase profiles,
//! per-node / per-block timelines, and causal-span analyses.
//!
//! ```text
//! trace-report TRACE.jsonl                  # per-phase summary + top-K kinds
//! trace-report TRACE.jsonl --top 20         # widen the "where did the time go" list
//! trace-report TRACE.jsonl --node 4         # timeline of everything touching node 4
//! trace-report TRACE.jsonl --block 7        # timeline of block 7's lifecycle
//! trace-report TRACE.jsonl --critical-path  # slowest item traces + phase attribution
//! trace-report TRACE.jsonl --trace 42       # span tree containing span id 42
//! trace-report TRACE.jsonl --item 17        # span timeline of data item 17
//! ```
//!
//! The *phase* of an event is the dotted-kind prefix (`transport.send` →
//! `transport`). Durations come from each event's optional `dur_ms` field;
//! events without one still count toward event totals. The span views need
//! a trace recorded with spans armed
//! ([`edgechain_telemetry::enable_spans`]). All output is derived from the
//! trace alone and is deterministic for a given file.

use edgechain_telemetry::json::{parse_flat_object, JsonValue};
use edgechain_telemetry::span::{span_from_fields, SpanIndex, SpanRec, GAP_PHASE};
use std::collections::BTreeMap;
use std::process::ExitCode;

struct TraceLine {
    t_ms: u64,
    kind: String,
    fields: Vec<(String, JsonValue)>,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut node_filter: Option<u64> = None;
    let mut block_filter: Option<u64> = None;
    let mut trace_filter: Option<u64> = None;
    let mut item_filter: Option<u64> = None;
    let mut critical_path = false;
    let mut top_k = 10usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--node" => {
                node_filter = args.get(i + 1).and_then(|v| v.parse().ok());
                if node_filter.is_none() {
                    return usage("--node requires an integer");
                }
                i += 2;
            }
            "--block" => {
                block_filter = args.get(i + 1).and_then(|v| v.parse().ok());
                if block_filter.is_none() {
                    return usage("--block requires an integer");
                }
                i += 2;
            }
            "--trace" => {
                trace_filter = args.get(i + 1).and_then(|v| v.parse().ok());
                if trace_filter.is_none() {
                    return usage("--trace requires a span id");
                }
                i += 2;
            }
            "--item" => {
                item_filter = args.get(i + 1).and_then(|v| v.parse().ok());
                if item_filter.is_none() {
                    return usage("--item requires an integer");
                }
                i += 2;
            }
            "--critical-path" => {
                critical_path = true;
                i += 1;
            }
            "--top" => {
                match args.get(i + 1).and_then(|v| v.parse().ok()) {
                    Some(k) => top_k = k,
                    None => return usage("--top requires an integer"),
                }
                i += 2;
            }
            "--help" | "-h" => return usage(""),
            flag if flag.starts_with("--") => {
                return usage(&format!("unknown flag {flag}"));
            }
            _ => {
                if path.replace(args[i].clone()).is_some() {
                    return usage("exactly one trace file expected");
                }
                i += 1;
            }
        }
    }
    let Some(path) = path else {
        return usage("missing trace file");
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace-report: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_trace_line(line) {
            Ok(ev) => events.push(ev),
            Err(e) => {
                eprintln!("trace-report: {path}:{}: {e}", lineno + 1);
                return ExitCode::FAILURE;
            }
        }
    }
    if events.is_empty() {
        println!("trace is empty");
        return ExitCode::SUCCESS;
    }

    if critical_path || trace_filter.is_some() || item_filter.is_some() {
        let spans: Vec<SpanRec> = events
            .iter()
            .filter_map(|ev| span_from_fields(&ev.kind, ev.t_ms, &ev.fields))
            .collect();
        if spans.is_empty() {
            println!("no spans in trace (was the run recorded with spans enabled?)");
            return ExitCode::SUCCESS;
        }
        let idx = SpanIndex::new(spans);
        if let Some(id) = trace_filter {
            return trace_view(&idx, id);
        }
        if let Some(item) = item_filter {
            return item_view(&idx, item);
        }
        critical_path_view(&idx, top_k);
        return ExitCode::SUCCESS;
    }
    if let Some(node) = node_filter {
        timeline(&events, &format!("node {node}"), |ev| {
            ev.fields.iter().any(|(k, v)| {
                matches!(
                    k.as_str(),
                    "node" | "src" | "dst" | "miner" | "winner" | "requester" | "storer"
                ) && v.as_f64() == Some(node as f64)
            })
        });
        return ExitCode::SUCCESS;
    }
    if let Some(block) = block_filter {
        timeline(&events, &format!("block {block}"), |ev| {
            ev.fields
                .iter()
                .any(|(k, v)| k == "block" && v.as_f64() == Some(block as f64))
        });
        return ExitCode::SUCCESS;
    }
    profile(&events, top_k);
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("trace-report: {err}");
    }
    eprintln!(
        "usage: trace-report TRACE.jsonl \
         [--node N | --block N | --critical-path | --trace ID | --item N] [--top K]"
    );
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn parse_trace_line(line: &str) -> Result<TraceLine, String> {
    let fields = parse_flat_object(line)?;
    let t_ms = fields
        .iter()
        .find(|(k, _)| k == "t_ms")
        .and_then(|(_, v)| v.as_f64())
        .ok_or("event without numeric t_ms")? as u64;
    let kind = fields
        .iter()
        .find(|(k, _)| k == "kind")
        .and_then(|(_, v)| v.as_str())
        .ok_or("event without string kind")?
        .to_string();
    let rest = fields
        .into_iter()
        .filter(|(k, _)| k != "t_ms" && k != "kind")
        .collect();
    Ok(TraceLine {
        t_ms,
        kind,
        fields: rest,
    })
}

fn phase_of(kind: &str) -> &str {
    kind.split('.').next().unwrap_or(kind)
}

fn dur_ms(ev: &TraceLine) -> Option<f64> {
    ev.fields
        .iter()
        .find(|(k, _)| k == "dur_ms")
        .and_then(|(_, v)| v.as_f64())
}

#[derive(Default)]
struct Agg {
    events: u64,
    dur_ms: f64,
    timed: u64,
    first_ms: u64,
    last_ms: u64,
}

impl Agg {
    fn add(&mut self, ev: &TraceLine) {
        if self.events == 0 {
            self.first_ms = ev.t_ms;
        }
        self.events += 1;
        self.last_ms = self.last_ms.max(ev.t_ms);
        if let Some(d) = dur_ms(ev) {
            self.dur_ms += d;
            self.timed += 1;
        }
    }
}

fn profile(events: &[TraceLine], top_k: usize) {
    let mut by_phase: BTreeMap<&str, Agg> = BTreeMap::new();
    let mut by_kind: BTreeMap<&str, Agg> = BTreeMap::new();
    for ev in events {
        by_phase.entry(phase_of(&ev.kind)).or_default().add(ev);
        by_kind.entry(&ev.kind).or_default().add(ev);
    }
    let span_s = events.iter().map(|e| e.t_ms).max().unwrap_or(0) as f64 / 1000.0;
    println!(
        "trace: {} events over {span_s:.1} s of sim time",
        events.len()
    );
    println!();
    println!("per-phase profile");
    println!(
        "  {:<12} {:>9} {:>14} {:>11} {:>11}",
        "phase", "events", "busy (s)", "first (s)", "last (s)"
    );
    for (phase, agg) in &by_phase {
        println!(
            "  {:<12} {:>9} {:>14.3} {:>11.1} {:>11.1}",
            phase,
            agg.events,
            agg.dur_ms / 1000.0,
            agg.first_ms as f64 / 1000.0,
            agg.last_ms as f64 / 1000.0
        );
    }
    println!();
    println!("where did the time go (top {top_k} kinds by summed dur_ms)");
    let mut kinds: Vec<(&str, &Agg)> = by_kind.iter().map(|(k, a)| (*k, a)).collect();
    kinds.sort_by(|a, b| {
        b.1.dur_ms
            .partial_cmp(&a.1.dur_ms)
            .unwrap()
            .then(b.1.events.cmp(&a.1.events))
            .then(a.0.cmp(b.0))
    });
    println!(
        "  {:<24} {:>9} {:>14} {:>12}",
        "kind", "events", "busy (s)", "mean (ms)"
    );
    for (kind, agg) in kinds.iter().take(top_k) {
        let mean = if agg.timed > 0 {
            agg.dur_ms / agg.timed as f64
        } else {
            0.0
        };
        println!(
            "  {:<24} {:>9} {:>14.3} {:>12.2}",
            kind,
            agg.events,
            agg.dur_ms / 1000.0,
            mean
        );
    }
}

/// Renders one span as a tree line: `kind [start → end] (dur) fields`.
fn render_span_tree(idx: &SpanIndex, s: &SpanRec, depth: usize) {
    let indent = "  ".repeat(depth);
    let mut line = format!(
        "  {indent}{} [{:.3}s \u{2192} {:.3}s] ({} ms)",
        s.kind,
        s.t0_ms as f64 / 1000.0,
        s.t1_ms as f64 / 1000.0,
        s.dur_ms()
    );
    if s.follows != 0 {
        line.push_str(&format!(" follows=#{}", s.follows));
    }
    for (k, v) in &s.fields {
        line.push_str(&format!(" {k}={v}"));
    }
    println!("{line}");
    for child in idx.children(s.id) {
        render_span_tree(idx, child, depth + 1);
    }
}

/// `--trace ID`: the span tree containing the given span id (walks up to
/// its root first), plus any spans that follow from a span in the tree.
fn trace_view(idx: &SpanIndex, id: u64) -> ExitCode {
    let Some(mut root) = idx.get(id) else {
        eprintln!("trace-report: no span with id {id}");
        return ExitCode::FAILURE;
    };
    while root.parent != 0 {
        match idx.get(root.parent) {
            Some(p) => root = p,
            None => break,
        }
    }
    println!("span tree containing #{id} (root #{})", root.id);
    render_span_tree(idx, root, 0);
    // Follows-from edges into this tree (repairs, fetches riding the item).
    let mut tree_ids = vec![root.id];
    let mut stack = vec![root.id];
    while let Some(cur) = stack.pop() {
        for child in idx.children(cur) {
            tree_ids.push(child.id);
            stack.push(child.id);
        }
    }
    let mut followers = 0;
    for r in idx.roots() {
        if r.follows != 0 && tree_ids.contains(&r.follows) {
            if followers == 0 {
                println!("  follows-from this tree:");
            }
            followers += 1;
            render_span_tree(idx, r, 1);
        }
    }
    ExitCode::SUCCESS
}

/// `--item N`: the full span timeline of data item N — its lifecycle tree
/// plus every fetch and repair that followed from it.
fn item_view(idx: &SpanIndex, item: u64) -> ExitCode {
    let want = item.to_string();
    let lifecycle = idx
        .roots()
        .into_iter()
        .find(|s| s.kind == "item.lifecycle" && s.field("item") == Some(want.as_str()));
    let Some(root) = lifecycle else {
        eprintln!("trace-report: no item.lifecycle span for item {item}");
        return ExitCode::FAILURE;
    };
    println!("span timeline for item {item}");
    render_span_tree(idx, root, 0);
    let mut extras: Vec<&SpanRec> = idx
        .roots()
        .into_iter()
        .filter(|s| s.id != root.id)
        .filter(|s| s.follows == root.id || s.field("item") == Some(want.as_str()))
        .collect();
    extras.sort_by_key(|s| (s.t0_ms, s.id));
    if !extras.is_empty() {
        println!("  causally linked:");
        for s in extras {
            render_span_tree(idx, s, 1);
        }
    }
    ExitCode::SUCCESS
}

/// `--critical-path`: top-K slowest item lifecycles with span trees and
/// per-phase attribution, then a flamegraph-style aggregate over every
/// item trace. Integral attribution means each trace's phase durations
/// sum exactly to its root duration.
fn critical_path_view(idx: &SpanIndex, top_k: usize) {
    let mut items: Vec<&SpanRec> = idx
        .roots()
        .into_iter()
        .filter(|s| s.kind == "item.lifecycle")
        .collect();
    if items.is_empty() {
        println!("no item.lifecycle spans in trace");
        return;
    }
    let mut durs: Vec<u64> = items.iter().map(|s| s.dur_ms()).collect();
    durs.sort_unstable();
    let pct = |q: f64| {
        let rank = ((q * durs.len() as f64).ceil() as usize).clamp(1, durs.len());
        durs[rank - 1]
    };
    println!(
        "critical path: {} item inclusion traces, dur p50/p95/p99 = {}/{}/{} ms",
        items.len(),
        pct(0.50),
        pct(0.95),
        pct(0.99)
    );

    items.sort_by(|a, b| b.dur_ms().cmp(&a.dur_ms()).then(a.id.cmp(&b.id)));
    println!();
    println!("top {} slowest traces", top_k.min(items.len()));
    for root in items.iter().take(top_k) {
        render_span_tree(idx, root, 0);
        let phases = idx.attribute(root.id);
        let total: u64 = phases.iter().map(|(_, d)| d).sum();
        let mut parts: Vec<String> = phases
            .iter()
            .filter(|(_, d)| *d > 0)
            .map(|(p, d)| {
                let share = if total == 0 {
                    0.0
                } else {
                    100.0 * *d as f64 / total as f64
                };
                format!("{p} {d} ms ({share:.1}%)")
            })
            .collect();
        if parts.is_empty() {
            parts.push("instantaneous".to_string());
        }
        println!("    attribution: {}", parts.join(", "));
    }

    // Flamegraph-style aggregate: every item trace's attribution summed,
    // widest phase first.
    let mut agg: BTreeMap<String, u64> = BTreeMap::new();
    let mut grand_total = 0u64;
    for root in &items {
        for (phase, d) in idx.attribute(root.id) {
            *agg.entry(phase).or_default() += d;
            grand_total += d;
        }
    }
    let mut rows: Vec<(String, u64)> = agg.into_iter().collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    println!();
    println!("aggregate phase attribution (all item traces)");
    let widest = rows.first().map_or(1, |(_, d)| (*d).max(1));
    for (phase, d) in &rows {
        let bar = "#".repeat(((d * 40) / widest) as usize);
        let share = if grand_total == 0 {
            0.0
        } else {
            100.0 * *d as f64 / grand_total as f64
        };
        println!("  {phase:<16} {bar:<40} {d:>10} ms {share:>5.1}%");
    }
    let gap: u64 = rows
        .iter()
        .filter(|(p, _)| p == GAP_PHASE)
        .map(|(_, d)| *d)
        .sum();
    let named_pct = if grand_total == 0 {
        100.0
    } else {
        100.0 * (grand_total - gap) as f64 / grand_total as f64
    };
    println!("named-phase coverage: {named_pct:.1}%");
}

fn timeline(events: &[TraceLine], what: &str, keep: impl Fn(&TraceLine) -> bool) {
    println!("timeline for {what}");
    let mut shown = 0u64;
    for ev in events.iter().filter(|e| keep(e)) {
        let mut line = format!("  {:>10.3}s  {:<24}", ev.t_ms as f64 / 1000.0, ev.kind);
        for (k, v) in &ev.fields {
            let rendered = match v {
                JsonValue::Str(s) => s.clone(),
                JsonValue::Bool(b) => b.to_string(),
                JsonValue::Num(n) => format!("{n}"),
                JsonValue::Null => "null".to_string(),
            };
            line.push_str(&format!(" {k}={rendered}"));
        }
        println!("{line}");
        shown += 1;
    }
    println!("  ({shown} events)");
}
