//! `trace-report` — renders a telemetry JSONL trace as per-phase profiles
//! and per-node / per-block timelines.
//!
//! ```text
//! trace-report TRACE.jsonl              # per-phase summary + top-K kinds
//! trace-report TRACE.jsonl --top 20     # widen the "where did the time go" list
//! trace-report TRACE.jsonl --node 4     # timeline of everything touching node 4
//! trace-report TRACE.jsonl --block 7    # timeline of block 7's lifecycle
//! ```
//!
//! The *phase* of an event is the dotted-kind prefix (`transport.send` →
//! `transport`). Durations come from each event's optional `dur_ms` field;
//! events without one still count toward event totals. All output is
//! derived from the trace alone and is deterministic for a given file.

use edgechain_telemetry::json::{parse_flat_object, JsonValue};
use std::collections::BTreeMap;
use std::process::ExitCode;

struct TraceLine {
    t_ms: u64,
    kind: String,
    fields: Vec<(String, JsonValue)>,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut node_filter: Option<u64> = None;
    let mut block_filter: Option<u64> = None;
    let mut top_k = 10usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--node" => {
                node_filter = args.get(i + 1).and_then(|v| v.parse().ok());
                if node_filter.is_none() {
                    return usage("--node requires an integer");
                }
                i += 2;
            }
            "--block" => {
                block_filter = args.get(i + 1).and_then(|v| v.parse().ok());
                if block_filter.is_none() {
                    return usage("--block requires an integer");
                }
                i += 2;
            }
            "--top" => {
                match args.get(i + 1).and_then(|v| v.parse().ok()) {
                    Some(k) => top_k = k,
                    None => return usage("--top requires an integer"),
                }
                i += 2;
            }
            "--help" | "-h" => return usage(""),
            flag if flag.starts_with("--") => {
                return usage(&format!("unknown flag {flag}"));
            }
            _ => {
                if path.replace(args[i].clone()).is_some() {
                    return usage("exactly one trace file expected");
                }
                i += 1;
            }
        }
    }
    let Some(path) = path else {
        return usage("missing trace file");
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace-report: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_trace_line(line) {
            Ok(ev) => events.push(ev),
            Err(e) => {
                eprintln!("trace-report: {path}:{}: {e}", lineno + 1);
                return ExitCode::FAILURE;
            }
        }
    }
    if events.is_empty() {
        println!("trace is empty");
        return ExitCode::SUCCESS;
    }

    if let Some(node) = node_filter {
        timeline(&events, &format!("node {node}"), |ev| {
            ev.fields.iter().any(|(k, v)| {
                matches!(
                    k.as_str(),
                    "node" | "src" | "dst" | "miner" | "winner" | "requester" | "storer"
                ) && v.as_f64() == Some(node as f64)
            })
        });
        return ExitCode::SUCCESS;
    }
    if let Some(block) = block_filter {
        timeline(&events, &format!("block {block}"), |ev| {
            ev.fields
                .iter()
                .any(|(k, v)| k == "block" && v.as_f64() == Some(block as f64))
        });
        return ExitCode::SUCCESS;
    }
    profile(&events, top_k);
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("trace-report: {err}");
    }
    eprintln!("usage: trace-report TRACE.jsonl [--node N | --block N] [--top K]");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn parse_trace_line(line: &str) -> Result<TraceLine, String> {
    let fields = parse_flat_object(line)?;
    let t_ms = fields
        .iter()
        .find(|(k, _)| k == "t_ms")
        .and_then(|(_, v)| v.as_f64())
        .ok_or("event without numeric t_ms")? as u64;
    let kind = fields
        .iter()
        .find(|(k, _)| k == "kind")
        .and_then(|(_, v)| v.as_str())
        .ok_or("event without string kind")?
        .to_string();
    let rest = fields
        .into_iter()
        .filter(|(k, _)| k != "t_ms" && k != "kind")
        .collect();
    Ok(TraceLine {
        t_ms,
        kind,
        fields: rest,
    })
}

fn phase_of(kind: &str) -> &str {
    kind.split('.').next().unwrap_or(kind)
}

fn dur_ms(ev: &TraceLine) -> Option<f64> {
    ev.fields
        .iter()
        .find(|(k, _)| k == "dur_ms")
        .and_then(|(_, v)| v.as_f64())
}

#[derive(Default)]
struct Agg {
    events: u64,
    dur_ms: f64,
    timed: u64,
    first_ms: u64,
    last_ms: u64,
}

impl Agg {
    fn add(&mut self, ev: &TraceLine) {
        if self.events == 0 {
            self.first_ms = ev.t_ms;
        }
        self.events += 1;
        self.last_ms = self.last_ms.max(ev.t_ms);
        if let Some(d) = dur_ms(ev) {
            self.dur_ms += d;
            self.timed += 1;
        }
    }
}

fn profile(events: &[TraceLine], top_k: usize) {
    let mut by_phase: BTreeMap<&str, Agg> = BTreeMap::new();
    let mut by_kind: BTreeMap<&str, Agg> = BTreeMap::new();
    for ev in events {
        by_phase.entry(phase_of(&ev.kind)).or_default().add(ev);
        by_kind.entry(&ev.kind).or_default().add(ev);
    }
    let span_s = events.iter().map(|e| e.t_ms).max().unwrap_or(0) as f64 / 1000.0;
    println!(
        "trace: {} events over {span_s:.1} s of sim time",
        events.len()
    );
    println!();
    println!("per-phase profile");
    println!(
        "  {:<12} {:>9} {:>14} {:>11} {:>11}",
        "phase", "events", "busy (s)", "first (s)", "last (s)"
    );
    for (phase, agg) in &by_phase {
        println!(
            "  {:<12} {:>9} {:>14.3} {:>11.1} {:>11.1}",
            phase,
            agg.events,
            agg.dur_ms / 1000.0,
            agg.first_ms as f64 / 1000.0,
            agg.last_ms as f64 / 1000.0
        );
    }
    println!();
    println!("where did the time go (top {top_k} kinds by summed dur_ms)");
    let mut kinds: Vec<(&str, &Agg)> = by_kind.iter().map(|(k, a)| (*k, a)).collect();
    kinds.sort_by(|a, b| {
        b.1.dur_ms
            .partial_cmp(&a.1.dur_ms)
            .unwrap()
            .then(b.1.events.cmp(&a.1.events))
            .then(a.0.cmp(b.0))
    });
    println!(
        "  {:<24} {:>9} {:>14} {:>12}",
        "kind", "events", "busy (s)", "mean (ms)"
    );
    for (kind, agg) in kinds.iter().take(top_k) {
        let mean = if agg.timed > 0 {
            agg.dur_ms / agg.timed as f64
        } else {
            0.0
        };
        println!(
            "  {:<24} {:>9} {:>14.3} {:>12.2}",
            kind,
            agg.events,
            agg.dur_ms / 1000.0,
            mean
        );
    }
}

fn timeline(events: &[TraceLine], what: &str, keep: impl Fn(&TraceLine) -> bool) {
    println!("timeline for {what}");
    let mut shown = 0u64;
    for ev in events.iter().filter(|e| keep(e)) {
        let mut line = format!("  {:>10.3}s  {:<24}", ev.t_ms as f64 / 1000.0, ev.kind);
        for (k, v) in &ev.fields {
            let rendered = match v {
                JsonValue::Str(s) => s.clone(),
                JsonValue::Bool(b) => b.to_string(),
                JsonValue::Num(n) => format!("{n}"),
                JsonValue::Null => "null".to_string(),
            };
            line.push_str(&format!(" {k}={rendered}"));
        }
        println!("{line}");
        shown += 1;
    }
    println!("  ({shown} events)");
}
