//! `edgechain-cli` — command-line front end for the network simulation.
//!
//! Runs the full edge-blockchain simulation with the paper's defaults and
//! prints the run report. Every evaluation knob is a flag, so parameter
//! sweeps can be scripted without writing Rust.
//!
//! ```text
//! edgechain-cli [--nodes N] [--minutes M] [--rate ITEMS_PER_MIN]
//!               [--placement optimal|random|none] [--seed S]
//!               [--malicious FRACTION] [--migrate SECS]
//!               [--rescale BLOCKS] [--mobility METERS]
//!               [--block-interval SECS] [--raft] [--verify] [--quiet]
//!               [--export FILE] [--check FILE]
//! ```
//!
//! `--export FILE` writes the final chain in the binary wire format
//! (`edgechain::core::codec`); `--check FILE` loads such a file, re-validates
//! every block and signature, and prints a summary instead of simulating.
//!
//! Example: compare placements at 30 nodes:
//!
//! ```sh
//! cargo run --release --bin edgechain-cli -- --nodes 30 --placement optimal
//! cargo run --release --bin edgechain-cli -- --nodes 30 --placement none
//! ```

use edgechain::core::{EdgeNetwork, NetworkConfig, Placement};
use edgechain::sim::TopologyConfig;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: edgechain-cli [--nodes N] [--minutes M] [--rate R] \
         [--placement optimal|random|none] [--seed S] [--malicious F] \
         [--migrate SECS] [--rescale BLOCKS] [--mobility METERS] \
         [--block-interval SECS] [--raft] [--verify] [--quiet] \
         [--export FILE] [--check FILE]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(args: &[String], i: &mut usize, flag: &str) -> T {
    *i += 1;
    args.get(*i)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            eprintln!("error: {flag} needs a valid value");
            usage()
        })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let mut config = NetworkConfig {
        nodes: 20,
        sim_minutes: 100,
        ..NetworkConfig::default()
    };
    let mut quiet = false;
    let mut export: Option<String> = None;
    let mut check: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--nodes" => config.nodes = parse(&args, &mut i, "--nodes"),
            "--minutes" => config.sim_minutes = parse(&args, &mut i, "--minutes"),
            "--rate" => config.data_items_per_min = parse(&args, &mut i, "--rate"),
            "--seed" => config.seed = parse(&args, &mut i, "--seed"),
            "--malicious" => config.malicious_fraction = parse(&args, &mut i, "--malicious"),
            "--migrate" => config.migration_interval_secs = Some(parse(&args, &mut i, "--migrate")),
            "--rescale" => config.token_rescale_blocks = Some(parse(&args, &mut i, "--rescale")),
            "--mobility" => {
                config.topology = TopologyConfig {
                    mobility_range: parse(&args, &mut i, "--mobility"),
                    ..config.topology
                }
            }
            "--block-interval" => {
                config.block_interval_secs = parse(&args, &mut i, "--block-interval")
            }
            "--placement" => {
                i += 1;
                config.placement = match args.get(i).map(String::as_str) {
                    Some("optimal") => Placement::Optimal,
                    Some("random") => Placement::Random,
                    Some("none") | Some("no-proactive") => Placement::NoProactive,
                    _ => usage(),
                };
            }
            "--raft" => config.raft_consensus = true,
            "--verify" => config.verify_signatures = true,
            "--quiet" => quiet = true,
            "--export" => export = Some(parse(&args, &mut i, "--export")),
            "--check" => check = Some(parse(&args, &mut i, "--check")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown flag {other}");
                usage();
            }
        }
        i += 1;
    }

    if let Some(path) = check {
        return check_chain_file(&path);
    }

    if !quiet {
        eprintln!(
            "running: {} nodes, {} min, {:.1} items/min, placement={}, seed={}",
            config.nodes,
            config.sim_minutes,
            config.data_items_per_min,
            config.placement,
            config.seed
        );
    }
    let network = match EdgeNetwork::new(config) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (report, chain) = network.run_with_chain();
    println!("{report}");
    if !quiet {
        eprintln!(
            "chain: {} blocks, {} metadata items on-chain",
            chain.len(),
            chain.total_metadata_items()
        );
    }
    if let Some(path) = export {
        let bytes = edgechain::core::codec::encode_chain(chain.as_slice());
        if let Err(e) = std::fs::write(&path, &bytes) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        if !quiet {
            eprintln!("exported {} bytes to {path}", bytes.len());
        }
    }
    ExitCode::SUCCESS
}

/// Loads an exported chain file, re-validates everything, prints a summary.
fn check_chain_file(path: &str) -> ExitCode {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: reading {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let blocks = match edgechain::core::codec::decode_chain(&bytes) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: decoding {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let chain = match edgechain::core::Blockchain::from_blocks(blocks) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: chain invalid: {e}");
            return ExitCode::FAILURE;
        }
    };
    for block in chain.iter().skip(1) {
        if let Err(e) = edgechain::core::Blockchain::verify_block_signatures(block) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    let ledger = chain.derive_ledger();
    println!(
        "{path}: valid chain, {} blocks, {} metadata items, {} distinct miners",
        chain.len(),
        chain.total_metadata_items(),
        ledger.len()
    );
    ExitCode::SUCCESS
}
