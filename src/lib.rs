//! # edgechain
//!
//! Umbrella crate for the edge-blockchain workspace — a from-scratch Rust
//! reproduction of *"Resource Allocation and Consensus on Edge Blockchain
//! in Pervasive Edge Computing Environments"* (ICDCS 2019).
//!
//! This crate re-exports the public APIs of every workspace member so that
//! applications can depend on a single crate:
//!
//! | Module | Source crate | Contents |
//! |---|---|---|
//! | [`core`] | `edgechain-core` | blocks, metadata, PoS/PoW, allocation, the full network simulation |
//! | [`crypto`] | `edgechain-crypto` | SHA-256, HMAC, Merkle trees, signatures, `U256` |
//! | [`sim`] | `edgechain-sim` | discrete-event engine, wireless topology, transport, metrics |
//! | [`facility`] | `edgechain-facility` | uncapacitated facility location solvers |
//! | [`raft`] | `edgechain-raft` | raft consensus for general information agreement |
//! | [`energy`] | `edgechain-energy` | battery and device energy models |
//!
//! # Quickstart
//!
//! ```
//! use edgechain::prelude::*;
//!
//! let config = NetworkConfig {
//!     nodes: 10,
//!     sim_minutes: 10,
//!     ..NetworkConfig::default()
//! };
//! let report = EdgeNetwork::new(config)?.run();
//! assert!(report.blocks_mined > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `examples/` for runnable scenarios: `quickstart`, a sensing-data
//! marketplace, a vehicular road-information network, and a
//! disconnection-recovery walk-through.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use edgechain_core as core;
pub use edgechain_crypto as crypto;
pub use edgechain_energy as energy;
pub use edgechain_facility as facility;
pub use edgechain_raft as raft;
pub use edgechain_sim as sim;
pub use edgechain_telemetry as telemetry;

/// The most commonly used types, importable with one `use`.
pub mod prelude {
    pub use edgechain_core::{
        Amendment, ArrivalProcess, Block, Blockchain, Burst, Candidate, DataId, DataType,
        Difficulty, EdgeNetwork, Identity, Ledger, Location, MetadataItem, NetworkConfig,
        NodeStorage, OpenArrivals, OverloadConfig, OverloadReport, Placement, RunReport,
        WorkloadConfig,
    };
    pub use edgechain_crypto::{sha256, Digest, KeyPair, MerkleTree};
    pub use edgechain_energy::{Battery, DeviceProfile, EnergyMeter};
    pub use edgechain_facility::{fdc, solve, UflInstance};
    pub use edgechain_sim::{
        gini, ChurnConfig, FaultEvent, FaultPlan, NodeId, SimTime, Topology, TopologyConfig,
        Transport, TransportConfig,
    };
}
