//! Offline no-op stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on many types but never
//! actually serializes through serde — the wire format lives in
//! `edgechain-core::codec`. With no crates.io mirror reachable, this
//! vendored crate keeps those derives compiling: the traits are empty
//! marker traits blanket-implemented for every type, and the derive macros
//! expand to nothing. Swapping the real serde back in later requires only
//! a Cargo.toml change; no source edits.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented for all
/// types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented for all
/// types.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Deserialization-side traits.
pub mod de {
    /// Marker stand-in for `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned {}
    impl<T: ?Sized> DeserializeOwned for T {}
}

/// Serialization-side traits.
pub mod ser {
    pub use crate::Serialize;
}
