//! Test configuration and the deterministic RNG behind `proptest!`.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// How many cases each property test runs, plus ignored knobs kept for
/// source compatibility with real proptest configs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to execute per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// RNG handed to strategies. Seeded from the test's name so every run of
/// a given test draws the same sequence of cases.
pub struct TestRng {
    pub(crate) rng: StdRng,
}

impl TestRng {
    /// Derives a seed by hashing `name` (FNV-1a).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(h),
        }
    }
}
