//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: `generate`
/// draws one concrete value directly.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: std::fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into `f` to build a dependent strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Strategies are drawn through shared references, so `&S` is a strategy.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: std::fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy backed by a closure; used by `prop_compose!`.
pub struct FnStrategy<T, F: Fn(&mut TestRng) -> T> {
    f: F,
}

impl<T, F: Fn(&mut TestRng) -> T> FnStrategy<T, F> {
    /// Wraps `f` as a strategy.
    pub fn new(f: F) -> Self {
        FnStrategy { f }
    }
}

impl<T: std::fmt::Debug, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<T, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(rng)
    }
}

/// Type-erased strategy; what [`Strategy::boxed`] returns.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

/// Object-safe facade over [`Strategy`].
trait DynStrategy {
    type Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value {
        self.generate(rng)
    }
}

impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Uniform choice among boxed strategies; what `prop_oneof!` builds.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`.
    ///
    /// # Panics
    ///
    /// Panics when `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T: std::fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// String literals act as regex-shaped string strategies. Only the
/// `[class]{m,n}` form (optionally `{n}`) plus `\PC` (printable ASCII)
/// is understood; unknown patterns fall back to alphanumerics.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) = parse_pattern(self);
        let n = rng.rng.gen_range(lo..=hi);
        (0..n)
            .map(|_| alphabet[rng.rng.gen_range(0..alphabet.len())])
            .collect()
    }
}

/// Parses `[class]{m,n}` into (alphabet, min_len, max_len).
fn parse_pattern(pat: &str) -> (Vec<char>, usize, usize) {
    let fallback: Vec<char> = ('a'..='z').chain('A'..='Z').chain('0'..='9').collect();
    let bytes: Vec<char> = pat.chars().collect();
    let mut alphabet = Vec::new();
    let mut i = 0;

    // Character class or escape.
    if i < bytes.len() && bytes[i] == '[' {
        i += 1;
        while i < bytes.len() && bytes[i] != ']' {
            if bytes[i] == '\\' && i + 1 < bytes.len() {
                push_escape(&mut alphabet, bytes[i + 1]);
                i += 2;
            } else if i + 2 < bytes.len() && bytes[i + 1] == '-' && bytes[i + 2] != ']' {
                let (a, b) = (bytes[i], bytes[i + 2]);
                for c in a..=b {
                    alphabet.push(c);
                }
                i += 3;
            } else {
                alphabet.push(bytes[i]);
                i += 1;
            }
        }
        i += 1; // closing ']'
    } else if i + 1 < bytes.len() && bytes[i] == '\\' {
        // \PC etc.: `\P` consumes the following class letter too.
        push_escape(&mut alphabet, bytes[i + 1]);
        i += if bytes[i + 1] == 'P' { 3 } else { 2 };
    }

    if alphabet.is_empty() {
        alphabet = fallback;
    }

    // Repetition count.
    let (mut lo, mut hi) = (1usize, 1usize);
    if i < bytes.len() && bytes[i] == '{' {
        let close = bytes[i..].iter().position(|&c| c == '}').map(|p| p + i);
        if let Some(close) = close {
            let body: String = bytes[i + 1..close].iter().collect();
            if let Some((a, b)) = body.split_once(',') {
                lo = a.trim().parse().unwrap_or(0);
                hi = b.trim().parse().unwrap_or(lo.max(8));
            } else if let Ok(n) = body.trim().parse() {
                lo = n;
                hi = n;
            }
        }
    } else if i < bytes.len() && (bytes[i] == '*' || bytes[i] == '+') {
        lo = usize::from(bytes[i] == '+');
        hi = 16;
    }

    (alphabet, lo, hi)
}

/// Expands one escape letter into characters.
fn push_escape(alphabet: &mut Vec<char>, esc: char) {
    match esc {
        'd' => alphabet.extend('0'..='9'),
        'w' => {
            alphabet.extend('a'..='z');
            alphabet.extend('A'..='Z');
            alphabet.extend('0'..='9');
            alphabet.push('_');
        }
        // `\PC` — "not control": printable ASCII is a faithful-enough subset.
        'P' | 'C' => alphabet.extend((0x20u8..0x7f).map(char::from)),
        other => alphabet.push(other),
    }
}
