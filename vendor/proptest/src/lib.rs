//! Offline, API-compatible subset of `proptest`.
//!
//! With no crates.io mirror reachable, this vendored crate implements the
//! slice of proptest the workspace's property tests use: the [`Strategy`]
//! trait with `prop_map` / `prop_flat_map`, `any::<T>()`, numeric range
//! strategies, `prop::collection::vec`, `prop::option::of`,
//! `prop::array::uniform4`, `prop::sample::Index`, a small
//! character-class string strategy for patterns like `"[a-zA-Z0-9/]{0,20}"`,
//! and the `proptest!` / `prop_compose!` / `prop_oneof!` /
//! `prop_assert*!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports its values via the assert
//!   message but is not minimized.
//! * **Deterministic seeding** — each `proptest!` test derives its RNG
//!   seed from the test's name, so failures reproduce exactly across runs.
//! * String "regex" strategies support only the `[class]{m,n}` shape the
//!   workspace uses (plus `\PC` as printable-ASCII); anything else falls
//!   back to alphanumerics.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    //! `any::<T>()` and the [`Arbitrary`] trait.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary_with(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_with(rng: &mut TestRng) -> Self {
                    rng.rng.gen::<u64>() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for u128 {
        fn arbitrary_with(rng: &mut TestRng) -> Self {
            (rng.rng.gen::<u64>() as u128) << 64 | rng.rng.gen::<u64>() as u128
        }
    }

    impl Arbitrary for bool {
        fn arbitrary_with(rng: &mut TestRng) -> Self {
            rng.rng.gen::<bool>()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_with(rng: &mut TestRng) -> Self {
            // Finite, sign-balanced, wide-magnitude floats.
            let m = rng.rng.gen::<f64>() * 2.0 - 1.0;
            let e = rng.rng.gen_range(-60i32..60);
            m * (2.0f64).powi(e)
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary_with(rng: &mut TestRng) -> Self {
            crate::sample::Index {
                raw: rng.rng.gen::<u64>() as usize,
            }
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary + std::fmt::Debug> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_with(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary + std::fmt::Debug>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Size specification for collections: an exact size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.rng.gen_range(self.size.lo..=self.size.hi);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with sizes drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

pub mod option {
    //! Option strategies (`prop::option::of`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy producing `Option`s of an inner strategy's values.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            // Bias toward Some, like real proptest (3:1).
            if rng.rng.gen_range(0..4usize) > 0 {
                Some(self.0.generate(rng))
            } else {
                None
            }
        }
    }

    /// `Some` three times out of four, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod array {
    //! Fixed-size array strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `[V; 4]` from one element strategy.
    #[derive(Debug, Clone)]
    pub struct Uniform4<S>(S);

    impl<S: Strategy> Strategy for Uniform4<S> {
        type Value = [S::Value; 4];
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            [
                self.0.generate(rng),
                self.0.generate(rng),
                self.0.generate(rng),
                self.0.generate(rng),
            ]
        }
    }

    /// Four independent draws from `elem`.
    pub fn uniform4<S: Strategy>(elem: S) -> Uniform4<S> {
        Uniform4(elem)
    }
}

pub mod sample {
    //! Index sampling (`prop::sample::Index`).

    /// An arbitrary index, resolved against a concrete length at use time.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index {
        pub(crate) raw: usize,
    }

    impl Index {
        /// Maps the raw draw into `0..len`.
        ///
        /// # Panics
        ///
        /// Panics when `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            self.raw % len
        }
    }
}

pub mod prelude {
    //! Everything a property test file needs.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest,
    };

    /// The `prop::` module path used by test files
    /// (`prop::collection::vec`, `prop::sample::Index`, …).
    pub use crate as prop;
}

/// Asserts a condition inside a property test (panics on failure; this
/// vendored stub does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Chooses uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Defines a function returning a composite strategy:
/// `fn name()(field in strat, …) -> T { body }`.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident $(< $($lt:lifetime),* >)? ()
        ($($field:ident in $strat:expr),+ $(,)?) -> $ty:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name() -> impl $crate::strategy::Strategy<Value = $ty> {
            $crate::strategy::FnStrategy::new(move |rng| {
                $(
                    let $field = {
                        let strat = $strat;
                        $crate::strategy::Strategy::generate(&strat, rng)
                    };
                )+
                $body
            })
        }
    };
}

/// Declares property tests. Each test body runs `config.cases` times with
/// fresh values drawn from its strategies; the RNG seed derives from the
/// test name, so runs are reproducible.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@tests ($cfg) $($rest)*);
    };
    (
        @tests ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    let _ = case;
                    $(
                        let $arg = {
                            let strat = $strat;
                            $crate::strategy::Strategy::generate(&strat, &mut rng)
                        };
                    )*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @tests ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}
