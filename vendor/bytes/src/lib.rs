//! Offline, API-compatible subset of the `bytes` crate: just enough of
//! [`Buf`]/[`BufMut`]/[`Bytes`]/[`BytesMut`] for the workspace's binary
//! codec. Backed by plain `Vec<u8>` — the zero-copy refcounting of the
//! real crate is not needed by a codec that reads from borrowed slices and
//! writes into owned buffers.

#![forbid(unsafe_code)]

/// Read-side cursor over a byte buffer.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes out, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics when empty.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Panics
    ///
    /// Panics when fewer than 8 bytes remain.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `u128`.
    ///
    /// # Panics
    ///
    /// Panics when fewer than 16 bytes remain.
    fn get_u128_le(&mut self) -> u128 {
        let mut b = [0u8; 16];
        self.copy_to_slice(&mut b);
        u128::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    ///
    /// # Panics
    ///
    /// Panics when fewer than 8 bytes remain.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write-side interface for growing a byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u128`.
    fn put_u128_le(&mut self, v: u128) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// An immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Copies `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    /// Total length including already-consumed bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer was empty to begin with.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.remaining(), "buffer underflow");
        dst.copy_from_slice(&self.data[self.pos..self.pos + dst.len()]);
        self.pos += dst.len();
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The written bytes as an owned vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut w = BytesMut::with_capacity(64);
        w.put_u8(7);
        w.put_u64_le(0xDEADBEEF);
        w.put_u128_le(1 << 100);
        w.put_f64_le(2.5);
        w.put_slice(b"tail");
        let mut r = Bytes::copy_from_slice(&w.to_vec());
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u64_le(), 0xDEADBEEF);
        assert_eq!(r.get_u128_le(), 1 << 100);
        assert_eq!(r.get_f64_le(), 2.5);
        let mut tail = [0u8; 4];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"tail");
        assert!(!r.has_remaining());
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r = Bytes::copy_from_slice(&[1, 2]);
        let _ = r.get_u64_le();
    }
}
