//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace vendors the small slice of `rand` it actually uses: the
//! [`Rng`] / [`RngCore`] / [`SeedableRng`] traits, [`rngs::StdRng`]
//! (implemented as xoshiro256** seeded through SplitMix64), uniform
//! `gen_range` over integer and float ranges, and
//! [`seq::SliceRandom::shuffle`]. Determinism is the only contract the
//! workspace relies on: identical seeds yield identical streams on every
//! platform. The statistical quality of xoshiro256** matches what the
//! simulation needs (it is the same generator family `rand`'s own
//! `SmallRng` uses).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their full domain (the subset
/// of `rand`'s `Standard` distribution the workspace uses).
pub trait UniformSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl UniformSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (u128::from(rng.next_u64()) * span) >> 64;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (u128::from(rng.next_u64()) * span) >> 64;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<u128> for Range<u128> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end - self.start;
        // Modulo draw; bias is < 2^-64 for any span and irrelevant here.
        let draw = u128::sample(rng) % span;
        self.start + draw
    }
}

impl SampleRange<u128> for RangeInclusive<u128> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        match hi.checked_sub(lo).and_then(|s| s.checked_add(1)) {
            Some(span) => lo + u128::sample(rng) % span,
            None => u128::sample(rng), // full domain
        }
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from the type's full domain
    /// (`[0, 1)` for floats).
    fn gen<T: UniformSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        f64::sample(self) < p
    }

    /// Fills `dest` with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self)
    }
}

/// Types `Rng::fill` can populate.
pub trait Fill {
    /// Overwrites `self` with random data from `rng`.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded through SplitMix64. (The real `rand::rngs::StdRng` is a
    /// ChaCha stream cipher; this vendored stand-in keeps the same API and
    /// determinism guarantee without the dependency.)
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** step.
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns one uniformly random element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=5usize);
            assert!(w <= 5);
            let f = rng.gen_range(1e-9..1.0);
            assert!((1e-9..1.0).contains(&f));
            let x = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity permutation");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "{hits}");
    }
}
