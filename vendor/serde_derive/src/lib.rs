//! No-op derive macros for the vendored serde stub: the `Serialize` and
//! `Deserialize` traits are blanket-implemented in the stub, so the
//! derives have nothing to emit.

use proc_macro::TokenStream;

/// Expands to nothing; the stub trait is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the stub trait is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
