//! Offline, API-compatible subset of `criterion`.
//!
//! With no crates.io mirror reachable, this vendored crate provides the
//! slice of the criterion API the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter` /
//! `iter_batched`, `Throughput`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros — with a plain
//! `Instant`-based timer. It calibrates an iteration count to roughly
//! 100 ms of work and reports mean time per iteration (plus throughput
//! where declared). No warm-up statistics, outlier analysis, plots, or
//! run-over-run comparison.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(100);

/// Re-export so `criterion::black_box` works like the real crate.
pub use std::hint::black_box;

/// Declared throughput for a benchmark, used to derive rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// How much setup output `iter_batched` amortizes per timing batch.
/// The stub runs setup once per iteration regardless; the variants exist
/// for source compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Benchmark registry and runner.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single benchmark function.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.into(), None, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declares the work per iteration for rate reporting; applies to
    /// subsequently registered functions.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_one(&full, self.throughput, f);
        self
    }

    /// Ends the group. (No-op in the stub; kept for API compatibility.)
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; collects the measured routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` for the calibrated number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on fresh input from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut measured = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            measured += start.elapsed();
        }
        self.elapsed = measured;
    }
}

/// Calibrates an iteration count, measures, and prints one result line.
fn run_one<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, mut f: F) {
    // Calibration pass: one iteration to estimate cost.
    let mut probe = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut probe);
    let per_iter = probe.elapsed.max(Duration::from_nanos(1));
    let iters = (TARGET.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let mean_ns = bencher.elapsed.as_nanos() as f64 / iters as f64;

    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => {
            format!(
                " {:>10.1} MiB/s",
                n as f64 / mean_ns * 1e9 / (1024.0 * 1024.0)
            )
        }
        Throughput::Elements(n) => {
            format!(" {:>10.1} Melem/s", n as f64 / mean_ns * 1e9 / 1e6)
        }
    });
    println!(
        "bench {name:<44} {:>12} /iter ({iters} iters){}",
        format_ns(mean_ns),
        rate.unwrap_or_default()
    );
}

/// Human-readable nanosecond quantity.
fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Collects benchmark functions under one runner function, mirroring the
/// real macro's `criterion_group!(name, target, ...)` form.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
